// Command bench is the reproducible performance harness for the
// simulator's cycle hot path. It runs miniature versions of the paper's
// Fig. 4 (6x6 synthetic load curves) and Fig. 6 (8x8 scalability)
// configurations, measures wall time and allocator traffic per
// simulated cycle, cross-checks the serial-vs-parallel determinism
// digests, measures parallel-executor scaling, runs the large-mesh
// scaling matrix, and writes everything as one JSON document (schema
// "tdmnoc-bench/v4" — v3 plus per-scenario resident-bytes reporting,
// the "large_mesh" section and the optional "prelayout" comparison;
// see README).
//
// Usage:
//
//	go run ./cmd/bench [-o BENCH_PR10.json] [-quick] [-strict] [-large]
//	                   [-baseline BENCH_PR8.json] [-max-regression 0.15]
//	                   [-trace-out trace.json]
//	                   [-prelayout BENCH_PR10_OLDLAYOUT.json]
//
// The "large_mesh" section measures the hybrid-TDM tornado workload on
// big meshes — 32x32 always, 64x64 in full runs, 128x128 only with
// -large (it simulates ~16k routers; minutes, gigabytes) — across the
// worker matrix {1, 2, 4, 8, 16} ({1, 8} in quick mode). Every point
// reports ns/cycle, allocs/cycle, resident heap bytes and bytes per
// router; the 32x32 points additionally run a checked digest pass, and
// -strict requires every large-mesh point to hold the per-router-scaled
// zero-alloc budget and every checked digest to match the serial one.
// Each cell
// runs in a fresh subprocess (the binary re-execs itself with the
// internal -large-point flag): measured in-process after the miniature
// sections have churned gigabytes of heap, the big rows read up to
// ~50% slower than the identical simulation in a clean process, which
// is allocator history, not simulation cost.
//
// -prelayout embeds a committed pre-refactor measurement (the PR10
// old-layout capture) and reports, per mesh size, the serial ns/cycle
// and resident-bytes improvement plus whether the digests still match
// bit-for-bit — the "same simulation, faster memory layout" evidence.
// It is informational: the numbers were taken on one specific machine,
// so -strict does not gate on them.
//
// -quick shortens the warmup/measure windows for CI smoke use.
// -strict exits nonzero when the steady-state hot path allocates (any
// Fig. 4 or Fig. 6 miniature above zeroAllocBudget allocs/cycle, with
// or without the observability recorder attached), when a determinism
// digest mismatches, or when the parallel-scaling gates fail — the CI
// regression gate. The fig4 and fig6 TDM miniatures are re-run with
// tracing enabled (standard "flows" profile) and their ns/cycle deltas
// against untraced twins are reported in the "traced" section; the
// shard rings are sized drop-free for the measured window, and -strict
// additionally requires ring_drops == 0 and overhead_fraction <=
// tracedOverheadBudget there.
//
// The "traced_parity" section pins the sharded-tracing contract on the
// fig4 TDM tornado miniature: the exported Perfetto trace must be
// byte-identical at Workers {1, 4, 8}, and every traced run's rolling
// invariant digest must equal the untraced serial run's digest —
// tracing is a pure observer at every worker count. -trace-out writes
// the merged trace of the widest parallel parity run to a file (the CI
// artifact).
//
// The "parallel" section measures the spin-barrier executor at worker
// counts {1, 2, 4, 8} on 6x6 and 16x16 hybrid-TDM meshes, reporting
// ns/cycle, speedup over serial, allocs/cycle, and whether the run's
// determinism digest matches the serial one. Speedup is only gated when
// the machine actually has the cores (GOMAXPROCS >= workers); digest
// equality is gated unconditionally.
//
// -baseline compares this run's serial Fig. 4 ns/cycle against a
// previously committed report and exits nonzero when any scenario
// regressed by more than -max-regression (fractional, default 0.15).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"time"

	"tdmnoc/hsnoc"
	"tdmnoc/internal/obs"
)

// Report is the top-level JSON document.
type Report struct {
	Schema     string           `json:"schema"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Quick      bool             `json:"quick"`
	GeneratedA string           `json:"generated_at"`
	Scenarios  []Scenario       `json:"scenarios"`
	Traced     []TracedScenario `json:"traced"`
	Parity     []TracedParity   `json:"traced_parity"`
	Digests    []DigestCheck    `json:"determinism"`
	Parallel   []ParallelPoint  `json:"parallel"`
	LargeMesh  []LargeMeshPoint `json:"large_mesh"`
	Prelayout  *Prelayout       `json:"prelayout,omitempty"`
}

// LargeMeshPoint is one (mesh, worker-count) measurement of the
// large-mesh scaling matrix. Unlike the miniature scenarios, memory
// footprint is a first-class result here: the point of the slab layout
// is that bytes/router stays flat as the mesh grows.
type LargeMeshPoint struct {
	Scenario
	Workers  int     `json:"workers"`
	SerialNs float64 `json:"serial_ns_per_cycle"`
	Speedup  float64 `json:"speedup"`
	// SpeedupMeasurable mirrors ParallelPoint: false when GOMAXPROCS <
	// workers, where the goroutines time-share cores and the ratio is
	// meaningless.
	SpeedupMeasurable bool `json:"speedup_measurable"`
	// Digest is the rolling invariant digest of a separate checked run
	// at this worker count (32x32 only — every-cycle state hashing on
	// the larger meshes would dwarf the measurement); DigestChecked
	// marks whether it ran, DigestMatch whether it equals the serial
	// digest.
	Digest        string `json:"digest,omitempty"`
	DigestChecked bool   `json:"digest_checked"`
	DigestMatch   bool   `json:"digest_match"`
}

// Prelayout embeds a pre-refactor measurement (captured at the last
// per-router-heap-objects commit) next to this run's numbers.
type Prelayout struct {
	Source string           `json:"source"`
	Note   string           `json:"note"`
	Points []PrelayoutPoint `json:"points"`
}

// PrelayoutPoint compares one mesh size, serial, old layout vs new.
type PrelayoutPoint struct {
	Name   string `json:"name"`
	Width  int    `json:"width"`
	Height int    `json:"height"`

	OldNsPerCycle float64 `json:"old_ns_per_cycle"`
	NewNsPerCycle float64 `json:"new_ns_per_cycle"`
	// NsImprovement is 1 - new/old: 0.20 = the new layout runs the same
	// simulation in 20% less time per cycle.
	NsImprovement    float64 `json:"ns_improvement"`
	OldResidentBytes uint64  `json:"old_resident_bytes"`
	NewResidentBytes uint64  `json:"new_resident_bytes"`
	BytesImprovement float64 `json:"bytes_improvement"`

	// Digest equality across the layouts: same windows, same seed, same
	// checked-run shape — the refactor must not change a single bit of
	// simulated state.
	OldDigest   string `json:"old_digest,omitempty"`
	NewDigest   string `json:"new_digest,omitempty"`
	DigestMatch bool   `json:"digest_match"`
}

// ParallelPoint is one (mesh, worker-count) measurement of the parallel
// executor's scaling behaviour.
type ParallelPoint struct {
	Name    string `json:"name"`
	Width   int    `json:"width"`
	Height  int    `json:"height"`
	Workers int    `json:"workers"`

	NsPerCycle     float64 `json:"ns_per_cycle"`
	SerialNs       float64 `json:"serial_ns_per_cycle"`
	Speedup        float64 `json:"speedup"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	// DigestMatch reports whether a checked run at this worker count
	// reproduced the serial run's rolling digest bit-for-bit.
	DigestMatch bool `json:"digest_match"`
	// SpeedupMeasurable is false when the machine has fewer cores than
	// workers (GOMAXPROCS < workers): the goroutines then time-share one
	// core and speedup is meaningless, so the strict gate skips it.
	SpeedupMeasurable bool `json:"speedup_measurable"`
}

// Scenario is one measured configuration.
type Scenario struct {
	Name    string  `json:"name"`
	Figure  string  `json:"figure"`
	Width   int     `json:"width"`
	Height  int     `json:"height"`
	Mode    string  `json:"mode"`
	Pattern string  `json:"pattern"`
	Rate    float64 `json:"rate"`

	WarmupCycles   int `json:"warmup_cycles"`
	MeasuredCycles int `json:"measured_cycles"`

	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	// ResidentBytes is the warmed simulator's steady-state heap
	// footprint (HeapInuse growth from just before construction to just
	// after warmup+GC); BytesPerRouter divides it by the tile count, the
	// number that must stay flat as the mesh scales.
	ResidentBytes  uint64  `json:"resident_bytes"`
	BytesPerRouter float64 `json:"bytes_per_router"`
	// HotPathZeroAlloc reports whether the steady-state loop stayed
	// within zeroAllocBudget (amortised zero: only rare reconfiguration
	// events may allocate, never the per-cycle pipeline).
	HotPathZeroAlloc bool `json:"hot_path_zero_alloc"`
}

// TracedScenario measures one scenario with the observability recorder
// attached: the per-cycle cost of tracing relative to the untraced
// baseline, and whether the enabled path stayed allocation-free.
type TracedScenario struct {
	Name           string `json:"name"`
	TelemetryEvery int    `json:"telemetry_every"`
	// Profile names the kind mask the recorder was attached with; the
	// overhead gate is defined for the "flows" profile — everything the
	// repo's own exporters consume (flow endpoints, link traversals,
	// circuit events, sampled gauges), with the per-flit pipeline-stage
	// kinds masked to a single branch at the emission site.
	Profile  string `json:"profile"`
	KindMask uint32 `json:"kind_mask"`
	// RingSample is the 1-in-N timeline sampling in effect (aggregates
	// stay exact; see tracedRingSample).
	RingSample int `json:"ring_sample"`
	// NsPerCycle and BaselineNs are each series' quietest interleaved
	// window; OverheadFraction is the best attempt's median per-pair
	// traced/untraced ratio minus one (see measureTraced), which is
	// what -strict gates — small negative values are measurement noise.
	NsPerCycle       float64 `json:"ns_per_cycle"`
	BaselineNs       float64 `json:"baseline_ns_per_cycle"`
	OverheadFraction float64 `json:"overhead_fraction"`
	AllocsPerCycle   float64 `json:"allocs_per_cycle"`
	EventsPerCycle   float64 `json:"events_per_cycle"`
	RingDrops        uint64  `json:"ring_drops"`
	// TracedZeroAlloc reports whether the enabled path stayed within
	// zeroAllocBudget — the "tracing on costs time, never garbage" gate.
	TracedZeroAlloc bool `json:"traced_zero_alloc"`
	// RingCapacity is the requested per-shard ring size (rounded up to a
	// power of two inside the recorder) — sized so the measured window
	// never wraps and RingDrops stays zero.
	RingCapacity int `json:"ring_capacity"`
}

// TracedParity is the sharded-tracing equivalence check for one
// scenario: the same traced run repeated at several worker counts, each
// compared against the untraced serial digest and the Workers=1 trace
// bytes.
type TracedParity struct {
	Name   string `json:"name"`
	Cycles int    `json:"cycles"`
	// UntracedDigest is the rolling invariant digest of the same run
	// without telemetry attached — the "tracing is a pure observer"
	// reference.
	UntracedDigest string        `json:"untraced_serial_digest"`
	Points         []ParityPoint `json:"points"`
}

// ParityPoint is one worker count of a TracedParity check.
type ParityPoint struct {
	Workers int    `json:"workers"`
	Digest  string `json:"digest"`
	// DigestMatch: this traced run reproduced the untraced serial digest.
	DigestMatch bool `json:"digest_match"`
	// TraceMatch: the exported Perfetto trace is byte-identical to the
	// Workers=1 traced export (trivially true at Workers=1).
	TraceMatch   bool   `json:"trace_match"`
	TraceBytes   int    `json:"trace_bytes"`
	RingDrops    uint64 `json:"ring_drops"`
	InvariantsOK bool   `json:"invariants_ok"`
}

// DigestCheck is one serial-vs-parallel determinism comparison.
type DigestCheck struct {
	Name          string `json:"name"`
	Cycles        int    `json:"cycles"`
	SerialDigest  string `json:"serial_digest"`
	Workers4      string `json:"workers4_digest"`
	Match         bool   `json:"match"`
	InvariantsOK  bool   `json:"invariants_ok"`
	CheckInterval int    `json:"check_interval"`
}

// zeroAllocBudget is the allocs/cycle ceiling under which the hot path
// counts as allocation-free. With the circuit records free-listed
// alongside the packet pools, even teardown/re-setup churn recycles,
// and the measured steady state sits at ~0.0001 allocs/cycle (a
// handful of runtime-internal allocations per 30k-cycle window). One
// alloc per five hundred cycles leaves 20x headroom over that floor
// while still catching any real per-event allocation the moment it
// appears.
const zeroAllocBudget = 0.002

// largeMeshAllocBudget scales the zero-alloc ceiling to the mesh. The
// big meshes run short windows (a miniature-length warmup would take
// hours at 16k routers), so slow capacity convergence — receive
// buffers, dedup maps and DLT event buffers still doubling toward
// their high-water marks — shows up as a trickle of allocations that
// the miniatures amortise away inside their 40k-cycle warmups. Per
// router the trickle is tiny (~0.0002 allocs/router/cycle measured at
// 128x128) and it is one-off capacity growth, not per-event garbage,
// so the budget is per-router: 0.001 allocs/router/cycle keeps 5x
// headroom over the measured floor while still catching real
// regressions — the old layout's lazily-doubling injection rings burned
// 36.7 allocs/cycle at 128x128, 2x over this gate.
func largeMeshAllocBudget(routers int) float64 {
	if b := 0.001 * float64(routers); b > zeroAllocBudget {
		return b
	}
	return zeroAllocBudget
}

// tracedOverheadBudget is the maximum fractional ns/cycle slowdown the
// full-fidelity traced path may cost over the untraced baseline under
// -strict. The sharded per-worker rings keep the enabled path to a
// kind-mask branch, a handful of counter increments and one masked ring
// store per event — an absolute cost of ~2µs/cycle on the fig6
// miniature. The budget is a fraction of the *untraced* baseline, so
// every serial speedup shrinks its denominator: the PR 10 layout
// rebuild cut untraced fig6 from ~35µs to ~20µs/cycle, which pushed
// the unchanged absolute tracing cost from ~6% to ~10% of baseline.
// 15% keeps headroom over that moving floor while still catching a
// real regression in the enabled path itself.
const tracedOverheadBudget = 0.15

// tracedEventsPerCycleHeadroom sizes the drop-free traced ring: the
// fig4/fig6 miniatures emit ~30-90 flows-profile events/cycle at steady
// state, so 128 events of ring per measured cycle (rounded up to a
// power of two by the recorder) guarantees the window never wraps.
const tracedEventsPerCycleHeadroom = 128

// tracedRingSample is the 1-in-N timeline sampling the overhead gate
// runs with: aggregate counters (flit/steal/setup totals, heatmaps,
// windows) stay exact, while only every 4th event per emitter reaches
// the ring. This is the production sweep configuration — long campaigns
// keep exact counters and a statistically dense timeline without
// streaming every event through memory; the parity section exercises
// the unsampled full-fidelity stream separately.
const tracedRingSample = 4

// tracedAttempts bounds how many times measureTraced re-measures when
// an attempt lands over budget; see its comment for why the minimum
// over attempts is the right statistic on shared hardware.
const tracedAttempts = 3

type spec struct {
	name, figure  string
	width, height int
	mode          hsnoc.Mode
	pattern       hsnoc.Pattern
	rate          float64
	workers       int // 0 = serial
	injectRingCap int // 0 = the engine's lazy default
}

func specConfig(sp spec) hsnoc.Config {
	cfg := hsnoc.DefaultConfig(sp.width, sp.height)
	cfg.Mode = sp.mode
	if sp.mode == hsnoc.HybridTDM {
		cfg.PathSharing = true
	}
	cfg.VCPowerGating = true
	cfg.Seed = 7
	if sp.workers > 1 {
		cfg.Workers = sp.workers
	}
	cfg.InjectRingCap = sp.injectRingCap
	return cfg
}

func modeName(m hsnoc.Mode) string {
	if m == hsnoc.HybridTDM {
		return "hybrid-tdm"
	}
	return "packet-switched"
}

func patternName(p hsnoc.Pattern) string {
	switch p {
	case hsnoc.Tornado:
		return "tornado"
	case hsnoc.UniformRandom:
		return "uniform"
	case hsnoc.Transpose:
		return "transpose"
	default:
		return fmt.Sprintf("pattern-%d", int(p))
	}
}

// measure runs one scenario: warm up past the allocator transient, then
// time a fixed run with the memstats deltas around it. The warmup also
// fills the packet pools, so the measured window sees the steady state
// the simulator spends virtually all of a long experiment in. Resident
// bytes are the HeapInuse growth from just before construction to the
// post-warmup GC — the simulator's own steady-state footprint, free of
// whatever the process had already allocated.
func measure(sp spec, warmup, cycles int) Scenario {
	runtime.GC()
	var mPre runtime.MemStats
	runtime.ReadMemStats(&mPre)

	cfg := specConfig(sp)
	s := hsnoc.NewSynthetic(cfg, sp.pattern, sp.rate)
	defer s.Close()
	s.Warmup(warmup)

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	resident := m0.HeapInuse - min(mPre.HeapInuse, m0.HeapInuse)
	t0 := time.Now()
	s.Warmup(cycles) // Warmup == Run without stats finalisation
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)

	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(cycles)
	return Scenario{
		Name: sp.name, Figure: sp.figure,
		Width: sp.width, Height: sp.height,
		Mode: modeName(sp.mode), Pattern: patternName(sp.pattern), Rate: sp.rate,
		WarmupCycles: warmup, MeasuredCycles: cycles,
		NsPerCycle:       float64(elapsed.Nanoseconds()) / float64(cycles),
		AllocsPerCycle:   allocs,
		BytesPerCycle:    float64(m1.TotalAlloc-m0.TotalAlloc) / float64(cycles),
		ResidentBytes:    resident,
		BytesPerRouter:   float64(resident) / float64(sp.width*sp.height),
		HotPathZeroAlloc: allocs <= zeroAllocBudget,
	}
}

// measureTraced measures the cost of the observability recorder against
// an untraced twin. Two identically-seeded simulators are warmed side by
// side, telemetry attaches to one with a ring sized for its whole
// measured window, and the timed region runs the two in short paired
// windows, alternating which twin goes first so within-pair drift
// (frequency scaling, a noisy neighbour landing mid-pair) cannot
// systematically charge one series. One attempt's OverheadFraction is
// the median of the per-pair traced/untraced ratios — an unbiased
// estimate whose error is bounded by one rank per outlier window. The
// measurement runs up to tracedAttempts attempts on the same warmed
// twins and keeps the best: co-tenant interference only ever inflates
// the ratio, so the minimum over attempts converges on the intrinsic
// tracing cost that the budget is about, while a single attempt on a
// shared CI box intermittently gates the neighbours instead of the
// code. The traced run is drop-free end to end: under -strict,
// ring_drops must be exactly zero and the overhead must stay within
// tracedOverheadBudget.
func measureTraced(sp spec, warmup, cycles int) TracedScenario {
	const every = 64
	const windows = 16
	// Sub-millisecond windows put the pair ratio at the mercy of a single
	// scheduler preemption, so quick mode still measures at least
	// 1000-cycle windows; the ring is sized for everything the timed
	// region will emit.
	window := cycles / windows
	if window < 1000 {
		window = 1000
	}
	ringCap := tracedAttempts * windows * window * tracedEventsPerCycleHeadroom / tracedRingSample

	base := hsnoc.NewSynthetic(specConfig(sp), sp.pattern, sp.rate)
	defer base.Close()
	traced := hsnoc.NewSynthetic(specConfig(sp), sp.pattern, sp.rate)
	defer traced.Close()
	base.Warmup(warmup)
	traced.Warmup(warmup)
	// Attach after the warmup: the ring (prefaulted at construction) then
	// holds exactly the measured window, and the attach cost itself stays
	// outside the timed region. The recorder runs the standard sweep
	// configuration — the "flows" kind mask plus a 1-in-4 sampled
	// timeline with exact aggregates — so the overhead budget gates what
	// production campaigns actually pay; the parity section below keeps
	// exercising the unsampled full-fidelity stream.
	rec, err := traced.AttachTelemetry(hsnoc.TelemetryOptions{
		Every:        every,
		RingCapacity: ringCap,
		KindMask:     obs.ProfileFlows,
		RingSample:   tracedRingSample,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	runtime.GC()
	e0 := rec.Events()
	// Per-twin allocator accounting: mallocs are read immediately around
	// each window — outside the t0..Since span, so the reads never land
	// in the timed region — and accumulated per simulator. Gating the
	// traced twin's own delta (rather than the joint delta of both twins
	// over one twin's cycles) keeps the gate about the tracing fast
	// path: the simulator's intrinsic rate (circuit growth, flit-pool
	// refills) already has its own serial-section gate, and doubling it
	// here would fail scenarios whose untraced rate sits above half the
	// budget even when tracing adds nothing.
	var baseMallocs, tracedMallocs uint64
	var ms runtime.MemStats
	timed := func(s *hsnoc.Simulator, acc *uint64) float64 {
		runtime.ReadMemStats(&ms)
		before := ms.Mallocs
		t0 := time.Now()
		s.Warmup(window)
		ns := float64(time.Since(t0).Nanoseconds()) / float64(window)
		runtime.ReadMemStats(&ms)
		*acc += ms.Mallocs - before
		return ns
	}
	attempt := func() (b, tr, ov float64) {
		ratios := make([]float64, 0, windows)
		b, tr = 1e18, 1e18
		for i := 0; i < windows; i++ {
			var bw, tw float64
			if i%2 == 0 {
				bw = timed(base, &baseMallocs)
				tw = timed(traced, &tracedMallocs)
			} else {
				tw = timed(traced, &tracedMallocs)
				bw = timed(base, &baseMallocs)
			}
			b = min(b, bw)
			tr = min(tr, tw)
			ratios = append(ratios, tw/bw)
		}
		sort.Float64s(ratios)
		return b, tr, ratios[len(ratios)/2] - 1
	}
	baseNs, tracedNs, overhead := attempt()
	// Allocator traffic and the event rate are snapshotted after the
	// first attempt, over the same warmup+measure horizon the untraced
	// serial gate uses. Retry attempts exist only to re-measure *timing*
	// on a noisy box; letting them extend the alloc window would smear
	// the simulator's long-horizon flit-pool growth (the same growth the
	// 16x16 scaling rows report) into the tracing gate.
	measured := windows * window
	allocs := float64(tracedMallocs) / float64(measured)
	eventsPerCycle := float64(rec.Events()-e0) / float64(measured)
	attempts := 1
	for overhead > tracedOverheadBudget && attempts < tracedAttempts {
		b, tr, ov := attempt()
		baseNs, tracedNs = min(baseNs, b), min(tracedNs, tr)
		overhead = min(overhead, ov)
		attempts++
	}
	return TracedScenario{
		Name:             sp.name,
		TelemetryEvery:   every,
		Profile:          "flows",
		KindMask:         obs.ProfileFlows,
		RingSample:       tracedRingSample,
		NsPerCycle:       tracedNs,
		BaselineNs:       baseNs,
		OverheadFraction: overhead,
		AllocsPerCycle:   allocs,
		EventsPerCycle:   eventsPerCycle,
		RingDrops:        rec.Dropped(),
		TracedZeroAlloc:  allocs <= zeroAllocBudget,
		RingCapacity:     ringCap,
	}
}

// tracedParityPoint repeats digestRun's exact cycle shape with
// telemetry attached and returns the exported merged trace alongside
// the digest. The ring covers warmup plus the measured run so the
// export is drop-free — a wrapped ring would make the Workers=1
// byte-comparison reference meaningless.
func tracedParityPoint(sp spec, workers, cycles int) (ParityPoint, []byte) {
	cfg := specConfig(sp)
	cfg.Workers = workers
	cfg.CheckInvariants = true
	cfg.CheckInterval = 1
	s := hsnoc.NewSynthetic(cfg, sp.pattern, sp.rate)
	defer s.Close()
	rec, err := s.AttachTelemetry(hsnoc.TelemetryOptions{
		Every:        64,
		RingCapacity: (cycles + cycles/2) * tracedEventsPerCycleHeadroom,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	s.Warmup(cycles / 2)
	s.Run(cycles)
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	return ParityPoint{
		Workers:      workers,
		Digest:       fmt.Sprintf("%#016x", s.RollingDigest()),
		TraceBytes:   buf.Len(),
		RingDrops:    rec.Dropped(),
		InvariantsOK: s.InvariantError() == nil,
		// DigestMatch and TraceMatch are filled by checkParity, which owns
		// the untraced reference and the Workers=1 trace bytes.
	}, buf.Bytes()
}

// checkParity runs the traced worker matrix {1, 4, 8} for one scenario
// and, when traceOut is non-empty, writes the widest parallel run's
// merged Perfetto trace there.
func checkParity(sp spec, cycles int, traceOut string) TracedParity {
	untraced, _ := digestRun(sp, 1, cycles)
	p := TracedParity{
		Name:           sp.name,
		Cycles:         cycles,
		UntracedDigest: fmt.Sprintf("%#016x", untraced),
	}
	var serialTrace []byte
	for _, w := range []int{1, 4, 8} {
		pt, trace := tracedParityPoint(sp, w, cycles)
		if w == 1 {
			serialTrace = trace
		}
		pt.DigestMatch = pt.Digest == p.UntracedDigest
		pt.TraceMatch = bytes.Equal(trace, serialTrace)
		if w == 8 && traceOut != "" {
			if err := os.WriteFile(traceOut, trace, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote merged Perfetto trace (workers=8) to %s\n", traceOut)
		}
		p.Points = append(p.Points, pt)
	}
	return p
}

// digestRun produces the rolling invariant digest of one checked run.
func digestRun(sp spec, workers, cycles int) (uint64, bool) {
	cfg := specConfig(sp)
	cfg.Workers = workers
	cfg.CheckInvariants = true
	cfg.CheckInterval = 1
	s := hsnoc.NewSynthetic(cfg, sp.pattern, sp.rate)
	defer s.Close()
	s.Warmup(cycles / 2)
	s.Run(cycles)
	return s.RollingDigest(), s.InvariantError() == nil
}

func checkDigest(sp spec, cycles int) DigestCheck {
	serial, okS := digestRun(sp, 1, cycles)
	par, okP := digestRun(sp, 4, cycles)
	return DigestCheck{
		Name:         sp.name,
		Cycles:       cycles,
		SerialDigest: fmt.Sprintf("%#016x", serial),
		Workers4:     fmt.Sprintf("%#016x", par),
		Match:        serial == par,
		InvariantsOK: okS && okP, CheckInterval: 1,
	}
}

// largeMeshSize is one mesh size of the large-mesh scaling matrix.
type largeMeshSize struct {
	width, height  int
	warmup, cycles int
	// digestCycles sizes the separate checked (CheckInterval=1) digest
	// runs; digestAllWorkers extends them from the serial reference to
	// the whole worker set. Only the 32x32 row checks every worker —
	// every-cycle state hashing on the bigger meshes costs more than the
	// measurement itself, and the worker-invariance contract is already
	// partition-shape-independent (the network package pins it on ragged
	// meshes too).
	digestCycles     int
	digestAllWorkers bool
}

// largeMeshSpec is the large-mesh workload: the same hybrid-TDM tornado
// configuration (seed 7, rate 0.20) as the committed old-layout capture,
// so the prelayout comparison is like for like. The injection rings are
// pre-sized for the row's whole window — tornado at 0.20 over-saturates
// these meshes, so the backlog ring would otherwise keep doubling
// through the measured window (the one allocation source the pools
// cannot absorb; ring capacity never changes results).
func largeMeshSpec(sz largeMeshSize, workers int) spec {
	const rate = 0.20
	// Worst-case injection backlog per NI over the whole window: each NI
	// injects Bernoulli(rate) per cycle, so the count is binomial with
	// mean rate*window — but with tens of thousands of NIs the tail
	// matters, so size to mean + 6 sigma (beyond that, a one-off ring
	// doubling is noise, not a leak).
	window := float64(sz.warmup + sz.cycles)
	mean := rate * window
	need := int(mean+6*math.Sqrt(mean*(1-rate))) + 1
	ringCap := 16
	for ringCap < need {
		ringCap <<= 1
	}
	return spec{
		name:   fmt.Sprintf("large-tdm-%dx%d-tornado-0.20", sz.width, sz.height),
		figure: "large", width: sz.width, height: sz.height,
		mode: hsnoc.HybridTDM, pattern: hsnoc.Tornado, rate: rate,
		workers: workers, injectRingCap: ringCap,
	}
}

// largePointReq is the wire format of the -large-point subprocess mode:
// one (mesh size, worker count) cell of the scaling matrix. A zero
// DigestCycles skips the checked digest pass.
type largePointReq struct {
	Width        int `json:"width"`
	Height       int `json:"height"`
	Warmup       int `json:"warmup"`
	Cycles       int `json:"cycles"`
	DigestCycles int `json:"digest_cycles"`
	Workers      int `json:"workers"`
}

// largePointResp is what the subprocess prints on stdout.
type largePointResp struct {
	Point    LargeMeshPoint `json:"point"`
	DigestOK bool           `json:"digest_ok"`
}

// isolateLargePoints makes measureLargeMesh run every cell in a fresh
// subprocess (the bench binary re-execing itself with -large-point).
// main() turns it on; unit tests leave it off and measure inline. The
// isolation exists because these points run after the miniature and
// parallel sections have churned gigabytes of heap through the process:
// measured in-process, the 64x64 serial row reads ~50% slower than the
// identical run in a fresh process (GC pacing and allocator reuse, not
// simulation cost). Fresh processes also match how the committed
// old-layout baseline was captured, keeping the prelayout A/B fair.
var isolateLargePoints bool

// runLargePoint measures one cell inline: the timing/footprint run,
// then the optional checked digest pass.
func runLargePoint(req largePointReq) (LargeMeshPoint, bool) {
	sz := largeMeshSize{width: req.Width, height: req.Height, warmup: req.Warmup, cycles: req.Cycles}
	sp := largeMeshSpec(sz, req.Workers)
	sc := measure(sp, req.Warmup, req.Cycles)
	// measure() applies the miniature budget; large meshes hold the
	// per-router-scaled one instead.
	sc.HotPathZeroAlloc = sc.AllocsPerCycle <= largeMeshAllocBudget(req.Width*req.Height)
	pt := LargeMeshPoint{Scenario: sc, Workers: req.Workers}
	ok := true
	if req.DigestCycles > 0 {
		var d uint64
		d, ok = digestRun(sp, req.Workers, req.DigestCycles)
		pt.Digest = fmt.Sprintf("%#016x", d)
		pt.DigestChecked = true
	}
	return pt, ok
}

// largePointSubprocess runs one cell in a fresh process and decodes its
// result. Any subprocess failure kills the bench loudly — a silently
// skipped point would read as a passing gate.
func largePointSubprocess(req largePointReq) (LargeMeshPoint, bool) {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: large-point isolation:", err)
		os.Exit(1)
	}
	b, _ := json.Marshal(req)
	cmd := exec.Command(exe, "-large-point", string(b))
	cmd.Stderr = os.Stderr
	outB, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: large-point subprocess (%dx%d w=%d): %v\n",
			req.Width, req.Height, req.Workers, err)
		os.Exit(1)
	}
	var resp largePointResp
	if err := json.Unmarshal(outB, &resp); err != nil {
		fmt.Fprintf(os.Stderr, "bench: large-point subprocess output: %v\n", err)
		os.Exit(1)
	}
	return resp.Point, resp.DigestOK
}

// measureLargeMesh runs the scaling matrix: every size at every worker
// count, with the digest passes the size row asks for.
func measureLargeMesh(sizes []largeMeshSize, workerSet []int) []LargeMeshPoint {
	var out []LargeMeshPoint
	for _, sz := range sizes {
		var serialNs float64
		var serialDigest string
		for _, w := range workerSet {
			req := largePointReq{
				Width: sz.width, Height: sz.height,
				Warmup: sz.warmup, Cycles: sz.cycles, Workers: w,
			}
			if sz.digestCycles > 0 && (w == 1 || sz.digestAllWorkers) {
				req.DigestCycles = sz.digestCycles
			}
			var pt LargeMeshPoint
			var digestOK bool
			if isolateLargePoints {
				pt, digestOK = largePointSubprocess(req)
			} else {
				pt, digestOK = runLargePoint(req)
			}
			if pt.DigestChecked {
				if w == 1 {
					serialDigest = pt.Digest
				}
				pt.DigestMatch = digestOK && pt.Digest == serialDigest
			}
			if w == 1 {
				serialNs = pt.NsPerCycle
			}
			pt.SerialNs = serialNs
			pt.Speedup = serialNs / pt.NsPerCycle
			pt.SpeedupMeasurable = w == 1 || runtime.GOMAXPROCS(0) >= w
			fmt.Printf("%-32s w=%-2d %11.1f ns/cycle  %7.4f allocs/cycle  %7.1f MB resident  %9.1f B/router  digest=%s match=%v\n",
				pt.Name, pt.Workers, pt.NsPerCycle, pt.AllocsPerCycle,
				float64(pt.ResidentBytes)/1e6, pt.BytesPerRouter, pt.Digest, !pt.DigestChecked || pt.DigestMatch)
			out = append(out, pt)
		}
	}
	return out
}

// oldLayoutReport mirrors the committed old-layout capture's schema
// ("tdmnoc-bench-oldlayout/v1": serial large-mesh points measured at
// the last commit before the slab-layout refactor).
type oldLayoutReport struct {
	Schema    string `json:"schema"`
	Note      string `json:"note"`
	LargeMesh []struct {
		Name          string  `json:"name"`
		Width         int     `json:"width"`
		Height        int     `json:"height"`
		NsPerCycle    float64 `json:"ns_per_cycle"`
		ResidentBytes uint64  `json:"resident_bytes"`
		Digest        string  `json:"digest"`
	} `json:"largemesh"`
}

// buildPrelayout joins the old-layout capture against this run's serial
// large-mesh points by mesh size. Sizes present on only one side are
// skipped (e.g. a quick run measures 32x32 only).
func buildPrelayout(r Report, path string) (*Prelayout, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var old oldLayoutReport
	if err := json.Unmarshal(raw, &old); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	p := &Prelayout{Source: path, Note: old.Note}
	for _, op := range old.LargeMesh {
		for _, np := range r.LargeMesh {
			if np.Workers != 1 || np.Width != op.Width || np.Height != op.Height {
				continue
			}
			pp := PrelayoutPoint{
				Name: op.Name, Width: op.Width, Height: op.Height,
				OldNsPerCycle: op.NsPerCycle, NewNsPerCycle: np.NsPerCycle,
				NsImprovement:    1 - np.NsPerCycle/op.NsPerCycle,
				OldResidentBytes: op.ResidentBytes, NewResidentBytes: np.ResidentBytes,
				BytesImprovement: 1 - float64(np.ResidentBytes)/float64(op.ResidentBytes),
				OldDigest:        op.Digest, NewDigest: np.Digest,
				DigestMatch: op.Digest != "" && op.Digest == np.Digest,
			}
			fmt.Printf("%-32s prelayout %11.1f -> %11.1f ns/cycle (%+.1f%%)  %7.1f -> %7.1f MB  digest_match=%v\n",
				pp.Name, pp.OldNsPerCycle, pp.NewNsPerCycle, -100*pp.NsImprovement,
				float64(pp.OldResidentBytes)/1e6, float64(pp.NewResidentBytes)/1e6, pp.DigestMatch)
			p.Points = append(p.Points, pp)
		}
	}
	return p, nil
}

// buildReport runs the whole suite. Split from main so the smoke test
// can drive it without exec'ing the binary. A non-empty traceOut saves
// the merged Perfetto trace of the Workers=8 parity run.
func buildReport(quick, large bool, traceOut string) Report {
	warmup, cycles, digestCycles := 40000, 30000, 2000
	if quick {
		// Uniform traffic keeps discovering new source/destination pairs
		// (circuit map growth, pool stocking) well past 10k cycles, so the
		// quick warmup cannot be much shorter than this without the
		// transient leaking into the measured window.
		warmup, cycles, digestCycles = 20000, 6000, 600
	}
	specs := []spec{
		{"fig4-ps-tornado-0.20", "fig4", 6, 6, hsnoc.PacketSwitched, hsnoc.Tornado, 0.20, 0, 0},
		{"fig4-tdm-tornado-0.20", "fig4", 6, 6, hsnoc.HybridTDM, hsnoc.Tornado, 0.20, 0, 0},
		{"fig4-tdm-uniform-0.35", "fig4", 6, 6, hsnoc.HybridTDM, hsnoc.UniformRandom, 0.35, 0, 0},
		{"fig6-tdm-transpose-0.20", "fig6", 8, 8, hsnoc.HybridTDM, hsnoc.Transpose, 0.20, 0, 0},
	}
	r := Report{
		Schema:     "tdmnoc-bench/v4",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		GeneratedA: time.Now().UTC().Format(time.RFC3339),
	}
	for _, sp := range specs {
		sc := measure(sp, warmup, cycles)
		fmt.Printf("%-26s %9.1f ns/cycle  %7.4f allocs/cycle  %9.1f B/cycle\n",
			sc.Name, sc.NsPerCycle, sc.AllocsPerCycle, sc.BytesPerCycle)
		r.Scenarios = append(r.Scenarios, sc)
	}
	// Tracing overhead: the fig4 and fig6 TDM miniatures re-run with the
	// recorder attached (standard "flows" profile), each against its own
	// untraced twin.
	for _, tsp := range []spec{specs[1], specs[3]} {
		tr := measureTraced(tsp, warmup, cycles)
		fmt.Printf("%-26s %9.1f ns/cycle traced (%+.1f%% vs untraced)  %7.4f allocs/cycle  %5.1f events/cycle  drops=%d\n",
			tr.Name+"+obs", tr.NsPerCycle, 100*tr.OverheadFraction, tr.AllocsPerCycle, tr.EventsPerCycle, tr.RingDrops)
		r.Traced = append(r.Traced, tr)
	}
	// Traced parity: the same scenario traced at Workers {1, 4, 8} must
	// export byte-identical traces and reproduce the untraced serial
	// digest — the sharded recorder is a pure, worker-invariant observer.
	par := checkParity(specs[1], digestCycles, traceOut)
	for _, pt := range par.Points {
		fmt.Printf("%-26s w=%d traced digest=%s match=%v trace_bytes=%d trace_match=%v drops=%d\n",
			par.Name, pt.Workers, pt.Digest, pt.DigestMatch, pt.TraceBytes, pt.TraceMatch, pt.RingDrops)
	}
	r.Parity = append(r.Parity, par)
	for _, sp := range specs[:3] { // digest checks cover the 6x6 set
		d := checkDigest(sp, digestCycles)
		fmt.Printf("%-26s serial=%s workers4=%s match=%v\n", d.Name, d.SerialDigest, d.Workers4, d.Match)
		r.Digests = append(r.Digests, d)
	}
	// Parallel scaling: the spin-barrier executor at 1/2/4/8 workers on a
	// small and a large hybrid-TDM mesh. The 6x6 points document that
	// parallelism does not pay below ~16x16; the 16x16 points carry the
	// speedup gate. Every parallel point also re-derives the determinism
	// digest so a scheduling bug cannot hide behind a fast wrong answer.
	for _, base := range []spec{
		{name: "scale-tdm-6x6-tornado-0.20", figure: "scaling", width: 6, height: 6,
			mode: hsnoc.HybridTDM, pattern: hsnoc.Tornado, rate: 0.20},
		{name: "scale-tdm-16x16-tornado-0.20", figure: "scaling", width: 16, height: 16,
			mode: hsnoc.HybridTDM, pattern: hsnoc.Tornado, rate: 0.20},
	} {
		serialDigest, _ := digestRun(base, 1, digestCycles)
		var serialNs float64
		for _, w := range []int{1, 2, 4, 8} {
			sp := base
			sp.workers = w
			sc := measure(sp, warmup, cycles)
			if w == 1 {
				serialNs = sc.NsPerCycle
			}
			match := true
			if w > 1 {
				d, ok := digestRun(base, w, digestCycles)
				match = ok && d == serialDigest
			}
			pt := ParallelPoint{
				Name: base.name, Width: base.width, Height: base.height, Workers: w,
				NsPerCycle: sc.NsPerCycle, SerialNs: serialNs,
				Speedup:        serialNs / sc.NsPerCycle,
				AllocsPerCycle: sc.AllocsPerCycle,
				DigestMatch:    match,
				SpeedupMeasurable: w == 1 ||
					runtime.GOMAXPROCS(0) >= w,
			}
			fmt.Printf("%-28s w=%d %9.1f ns/cycle  speedup %.2fx  %7.4f allocs/cycle  digest_match=%v\n",
				pt.Name, pt.Workers, pt.NsPerCycle, pt.Speedup, pt.AllocsPerCycle, pt.DigestMatch)
			r.Parallel = append(r.Parallel, pt)
		}
	}
	// Large-mesh scaling matrix. Quick mode keeps CI honest with a short
	// 32x32 pass (the zero-alloc and digest gates still apply); full
	// runs add 64x64, and -large the 128x128 headline point. The worker
	// sets match: {1, 8} for smoke, the full {1, 2, 4, 8, 16} matrix
	// otherwise. Warmup windows are shorter than the miniatures' —
	// tornado on a big mesh reaches its steady state quickly (the flow
	// set is fixed and circuit churn is local), and a 40k-cycle warmup
	// at 64x64 would cost more than the rest of the suite combined.
	sizes := []largeMeshSize{{32, 32, 4000, 2000, 400, true}}
	workerSet := []int{1, 2, 4, 8, 16}
	if quick {
		sizes = []largeMeshSize{{32, 32, 1500, 500, 400, true}}
		workerSet = []int{1, 8}
	} else {
		sizes = append(sizes, largeMeshSize{64, 64, 2000, 1000, 400, false})
		if large {
			sizes = append(sizes, largeMeshSize{128, 128, 800, 400, 400, false})
		}
	}
	r.LargeMesh = measureLargeMesh(sizes, workerSet)
	return r
}

// strictViolations lists why a report fails the -strict gate (empty =
// pass). Hot-path allocation is gated on every Fig. 4 and Fig. 6
// miniature — the packet pools scale with mesh area, so the 8x8
// scenarios owe the same zero-alloc steady state as the 6x6 ones; the
// determinism digests must match on every checked pair.
func strictViolations(r Report) []string {
	var out []string
	for _, sc := range r.Scenarios {
		if !sc.HotPathZeroAlloc {
			out = append(out, fmt.Sprintf("%s: %.4f allocs/cycle exceeds the zero-alloc budget %.2f",
				sc.Name, sc.AllocsPerCycle, zeroAllocBudget))
		}
	}
	for _, tr := range r.Traced {
		if !tr.TracedZeroAlloc {
			out = append(out, fmt.Sprintf("%s (traced): %.4f allocs/cycle exceeds the zero-alloc budget %.2f",
				tr.Name, tr.AllocsPerCycle, zeroAllocBudget))
		}
		if tr.OverheadFraction > tracedOverheadBudget {
			out = append(out, fmt.Sprintf("%s (traced): %.1f%% overhead exceeds the %.0f%% tracing budget",
				tr.Name, 100*tr.OverheadFraction, 100*tracedOverheadBudget))
		}
		if tr.RingDrops != 0 {
			out = append(out, fmt.Sprintf("%s (traced): %d ring drops — the drop-free sized ring wrapped",
				tr.Name, tr.RingDrops))
		}
	}
	for _, par := range r.Parity {
		for _, pt := range par.Points {
			if !pt.DigestMatch {
				out = append(out, fmt.Sprintf("%s w=%d (traced): digest %s != untraced serial %s — tracing perturbed the simulation",
					par.Name, pt.Workers, pt.Digest, par.UntracedDigest))
			}
			if !pt.TraceMatch {
				out = append(out, fmt.Sprintf("%s w=%d (traced): exported trace differs from the Workers=1 export",
					par.Name, pt.Workers))
			}
			if pt.RingDrops != 0 {
				out = append(out, fmt.Sprintf("%s w=%d (traced): %d ring drops in the parity run",
					par.Name, pt.Workers, pt.RingDrops))
			}
			if !pt.InvariantsOK {
				out = append(out, fmt.Sprintf("%s w=%d (traced): runtime invariant violations detected",
					par.Name, pt.Workers))
			}
		}
	}
	for _, d := range r.Digests {
		if !d.Match {
			out = append(out, fmt.Sprintf("%s: serial digest %s != workers4 digest %s",
				d.Name, d.SerialDigest, d.Workers4))
		}
		if !d.InvariantsOK {
			out = append(out, fmt.Sprintf("%s: runtime invariant violations detected", d.Name))
		}
	}
	for _, p := range r.LargeMesh {
		if !p.HotPathZeroAlloc {
			out = append(out, fmt.Sprintf("%s w=%d: %.4f allocs/cycle exceeds the per-router zero-alloc budget %.3f",
				p.Name, p.Workers, p.AllocsPerCycle, largeMeshAllocBudget(p.Width*p.Height)))
		}
		if p.DigestChecked && !p.DigestMatch {
			out = append(out, fmt.Sprintf("%s w=%d: large-mesh digest %s diverged from serial",
				p.Name, p.Workers, p.Digest))
		}
	}
	for _, p := range r.Parallel {
		if !p.DigestMatch {
			out = append(out, fmt.Sprintf("%s w=%d: determinism digest diverged from serial", p.Name, p.Workers))
		}
		// The headline acceptance point: 4 workers on the 16x16 mesh must
		// be at least 2x faster than serial — but only on machines that
		// can physically run 4 workers in parallel.
		if p.Workers == 4 && p.Width >= 16 && p.SpeedupMeasurable && p.Speedup < 2.0 {
			out = append(out, fmt.Sprintf("%s w=%d: speedup %.2fx below the 2x floor", p.Name, p.Workers, p.Speedup))
		}
	}
	return out
}

// baselineViolations compares this run's serial Fig. 4 ns/cycle numbers
// against a previously committed report, printing every ratio and
// returning one entry per scenario that regressed beyond maxRegress
// (fractional; 0.15 = 15% slower). Only Fig. 4 scenarios are gated:
// they are the serial hot-path anchors the zero-alloc budget also uses.
func baselineViolations(r, base Report, maxRegress float64) []string {
	baseNs := make(map[string]float64, len(base.Scenarios))
	for _, sc := range base.Scenarios {
		baseNs[sc.Name] = sc.NsPerCycle
	}
	var out []string
	for _, sc := range r.Scenarios {
		old, ok := baseNs[sc.Name]
		if !ok || old <= 0 {
			continue
		}
		ratio := sc.NsPerCycle / old
		fmt.Printf("%-26s baseline %9.1f ns/cycle  now %9.1f  ratio %.3f\n", sc.Name, old, sc.NsPerCycle, ratio)
		if sc.Figure == "fig4" && ratio > 1+maxRegress {
			out = append(out, fmt.Sprintf("%s: %.1f ns/cycle is %.1f%% over the %.1f ns/cycle baseline (max +%.0f%%)",
				sc.Name, sc.NsPerCycle, 100*(ratio-1), old, 100*maxRegress))
		}
	}
	return out
}

func main() {
	out := flag.String("o", "BENCH_PR10.json", "output JSON path")
	quick := flag.Bool("quick", false, "short windows for CI smoke runs")
	strict := flag.Bool("strict", false, "exit nonzero on hot-path allocations, traced overhead/ring drops, digest mismatch, or scaling-gate failure")
	large := flag.Bool("large", false, "include the 128x128 large-mesh row (minutes of runtime, gigabytes of heap)")
	baseline := flag.String("baseline", "", "committed report to gate serial Fig. 4 ns/cycle regressions against")
	maxRegress := flag.Float64("max-regression", 0.15, "allowed fractional ns/cycle regression vs -baseline")
	traceOut := flag.String("trace-out", "", "write the merged Perfetto trace of the Workers=8 parity run to this file")
	prelayout := flag.String("prelayout", "", "committed old-layout capture to embed a layout A/B comparison from")
	largePoint := flag.String("large-point", "", "internal: measure the one large-mesh cell described by this JSON request and print the result JSON (per-point process isolation)")
	flag.Parse()

	if *largePoint != "" {
		var req largePointReq
		if err := json.Unmarshal([]byte(*largePoint), &req); err != nil {
			fmt.Fprintln(os.Stderr, "bench: -large-point:", err)
			os.Exit(1)
		}
		pt, ok := runLargePoint(req)
		if err := json.NewEncoder(os.Stdout).Encode(largePointResp{Point: pt, DigestOK: ok}); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		return
	}
	isolateLargePoints = true

	r := buildReport(*quick, *large, *traceOut)
	if *prelayout != "" {
		p, err := buildPrelayout(r, *prelayout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		r.Prelayout = p
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	fail := false
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parsing %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		for _, msg := range baselineViolations(r, base, *maxRegress) {
			fmt.Fprintln(os.Stderr, "bench: REGRESSION:", msg)
			fail = true
		}
	}
	if *strict {
		if v := strictViolations(r); len(v) != 0 {
			for _, msg := range v {
				fmt.Fprintln(os.Stderr, "bench: STRICT FAIL:", msg)
			}
			fail = true
		} else {
			fmt.Println("strict gate: ok")
		}
	}
	if fail {
		os.Exit(1)
	}
}
