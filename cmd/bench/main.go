// Command bench is the reproducible performance harness for the
// simulator's cycle hot path. It runs miniature versions of the paper's
// Fig. 4 (6x6 synthetic load curves) and Fig. 6 (8x8 scalability)
// configurations, measures wall time and allocator traffic per
// simulated cycle, cross-checks the serial-vs-parallel determinism
// digests, and writes everything as one JSON document (schema
// "tdmnoc-bench/v1", see README).
//
// Usage:
//
//	go run ./cmd/bench [-o BENCH_PR3.json] [-quick] [-strict]
//
// -quick shortens the warmup/measure windows for CI smoke use.
// -strict exits nonzero when the steady-state hot path allocates (any
// 6x6 scenario above zeroAllocBudget allocs/cycle, with or without the
// observability recorder attached) or when a determinism digest
// mismatches — the CI regression gate. One scenario is re-run with
// tracing enabled and its ns/cycle delta against the untraced baseline
// is reported in the "traced" section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"tdmnoc/hsnoc"
)

// Report is the top-level JSON document.
type Report struct {
	Schema     string           `json:"schema"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Quick      bool             `json:"quick"`
	GeneratedA string           `json:"generated_at"`
	Scenarios  []Scenario       `json:"scenarios"`
	Traced     []TracedScenario `json:"traced"`
	Digests    []DigestCheck    `json:"determinism"`
}

// Scenario is one measured configuration.
type Scenario struct {
	Name    string  `json:"name"`
	Figure  string  `json:"figure"`
	Width   int     `json:"width"`
	Height  int     `json:"height"`
	Mode    string  `json:"mode"`
	Pattern string  `json:"pattern"`
	Rate    float64 `json:"rate"`

	WarmupCycles   int `json:"warmup_cycles"`
	MeasuredCycles int `json:"measured_cycles"`

	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	// HotPathZeroAlloc reports whether the steady-state loop stayed
	// within zeroAllocBudget (amortised zero: only rare reconfiguration
	// events may allocate, never the per-cycle pipeline).
	HotPathZeroAlloc bool `json:"hot_path_zero_alloc"`
}

// TracedScenario measures one scenario with the observability recorder
// attached: the per-cycle cost of tracing relative to the untraced
// baseline, and whether the enabled path stayed allocation-free.
type TracedScenario struct {
	Name           string  `json:"name"`
	TelemetryEvery int     `json:"telemetry_every"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	BaselineNs     float64 `json:"baseline_ns_per_cycle"`
	// OverheadFraction is (traced - baseline) / baseline; small negative
	// values are measurement noise.
	OverheadFraction float64 `json:"overhead_fraction"`
	AllocsPerCycle   float64 `json:"allocs_per_cycle"`
	EventsPerCycle   float64 `json:"events_per_cycle"`
	RingDrops        uint64  `json:"ring_drops"`
	// TracedZeroAlloc reports whether the enabled path stayed within
	// zeroAllocBudget — the "tracing on costs time, never garbage" gate.
	TracedZeroAlloc bool `json:"traced_zero_alloc"`
}

// DigestCheck is one serial-vs-parallel determinism comparison.
type DigestCheck struct {
	Name          string `json:"name"`
	Cycles        int    `json:"cycles"`
	SerialDigest  string `json:"serial_digest"`
	Workers4      string `json:"workers4_digest"`
	Match         bool   `json:"match"`
	InvariantsOK  bool   `json:"invariants_ok"`
	CheckInterval int    `json:"check_interval"`
}

// zeroAllocBudget is the allocs/cycle ceiling under which the hot path
// counts as allocation-free: rare circuit-reconfiguration events may
// allocate (circuit block growth), but the per-cycle pipeline must not.
// One alloc per hundred cycles is two orders of magnitude below one
// event per cycle and far below any real hot-path regression.
const zeroAllocBudget = 0.01

type spec struct {
	name, figure  string
	width, height int
	mode          hsnoc.Mode
	pattern       hsnoc.Pattern
	rate          float64
}

func specConfig(sp spec) hsnoc.Config {
	cfg := hsnoc.DefaultConfig(sp.width, sp.height)
	cfg.Mode = sp.mode
	if sp.mode == hsnoc.HybridTDM {
		cfg.PathSharing = true
	}
	cfg.VCPowerGating = true
	cfg.Seed = 7
	return cfg
}

func modeName(m hsnoc.Mode) string {
	if m == hsnoc.HybridTDM {
		return "hybrid-tdm"
	}
	return "packet-switched"
}

func patternName(p hsnoc.Pattern) string {
	switch p {
	case hsnoc.Tornado:
		return "tornado"
	case hsnoc.UniformRandom:
		return "uniform"
	case hsnoc.Transpose:
		return "transpose"
	default:
		return fmt.Sprintf("pattern-%d", int(p))
	}
}

// measure runs one scenario: warm up past the allocator transient, then
// time a fixed run with the memstats deltas around it. The warmup also
// fills the packet pools, so the measured window sees the steady state
// the simulator spends virtually all of a long experiment in.
func measure(sp spec, warmup, cycles int) Scenario {
	cfg := specConfig(sp)
	s := hsnoc.NewSynthetic(cfg, sp.pattern, sp.rate)
	defer s.Close()
	s.Warmup(warmup)

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	s.Warmup(cycles) // Warmup == Run without stats finalisation
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)

	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(cycles)
	return Scenario{
		Name: sp.name, Figure: sp.figure,
		Width: sp.width, Height: sp.height,
		Mode: modeName(sp.mode), Pattern: patternName(sp.pattern), Rate: sp.rate,
		WarmupCycles: warmup, MeasuredCycles: cycles,
		NsPerCycle:       float64(elapsed.Nanoseconds()) / float64(cycles),
		AllocsPerCycle:   allocs,
		BytesPerCycle:    float64(m1.TotalAlloc-m0.TotalAlloc) / float64(cycles),
		HotPathZeroAlloc: allocs <= zeroAllocBudget,
	}
}

// measureTraced re-runs a scenario with the observability recorder
// attached and reports the per-cycle delta against the untraced
// baseline. The ring is sized to wrap during the run, so the measured
// window exercises the drop-oldest steady state, not an idle buffer.
func measureTraced(sp spec, warmup, cycles int, baseline float64) TracedScenario {
	const every = 64
	cfg := specConfig(sp)
	s := hsnoc.NewSynthetic(cfg, sp.pattern, sp.rate)
	defer s.Close()
	rec, err := s.AttachTelemetry(hsnoc.TelemetryOptions{Every: every, RingCapacity: 1 << 14})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	s.Warmup(warmup)

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	e0 := rec.Events()
	t0 := time.Now()
	s.Warmup(cycles)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)

	ns := float64(elapsed.Nanoseconds()) / float64(cycles)
	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(cycles)
	return TracedScenario{
		Name:             sp.name,
		TelemetryEvery:   every,
		NsPerCycle:       ns,
		BaselineNs:       baseline,
		OverheadFraction: (ns - baseline) / baseline,
		AllocsPerCycle:   allocs,
		EventsPerCycle:   float64(rec.Events()-e0) / float64(cycles),
		RingDrops:        rec.Dropped(),
		TracedZeroAlloc:  allocs <= zeroAllocBudget,
	}
}

// digestRun produces the rolling invariant digest of one checked run.
func digestRun(sp spec, workers, cycles int) (uint64, bool) {
	cfg := specConfig(sp)
	cfg.Workers = workers
	cfg.CheckInvariants = true
	cfg.CheckInterval = 1
	s := hsnoc.NewSynthetic(cfg, sp.pattern, sp.rate)
	defer s.Close()
	s.Warmup(cycles / 2)
	s.Run(cycles)
	return s.RollingDigest(), s.InvariantError() == nil
}

func checkDigest(sp spec, cycles int) DigestCheck {
	serial, okS := digestRun(sp, 1, cycles)
	par, okP := digestRun(sp, 4, cycles)
	return DigestCheck{
		Name:         sp.name,
		Cycles:       cycles,
		SerialDigest: fmt.Sprintf("%#016x", serial),
		Workers4:     fmt.Sprintf("%#016x", par),
		Match:        serial == par,
		InvariantsOK: okS && okP, CheckInterval: 1,
	}
}

// buildReport runs the whole suite. Split from main so the smoke test
// can drive it without exec'ing the binary.
func buildReport(quick bool) Report {
	warmup, cycles, digestCycles := 40000, 30000, 2000
	if quick {
		// Uniform traffic keeps discovering new source/destination pairs
		// (circuit map growth, pool stocking) well past 10k cycles, so the
		// quick warmup cannot be much shorter than this without the
		// transient leaking into the measured window.
		warmup, cycles, digestCycles = 20000, 6000, 600
	}
	specs := []spec{
		{"fig4-ps-tornado-0.20", "fig4", 6, 6, hsnoc.PacketSwitched, hsnoc.Tornado, 0.20},
		{"fig4-tdm-tornado-0.20", "fig4", 6, 6, hsnoc.HybridTDM, hsnoc.Tornado, 0.20},
		{"fig4-tdm-uniform-0.35", "fig4", 6, 6, hsnoc.HybridTDM, hsnoc.UniformRandom, 0.35},
		{"fig6-tdm-transpose-0.20", "fig6", 8, 8, hsnoc.HybridTDM, hsnoc.Transpose, 0.20},
	}
	r := Report{
		Schema:     "tdmnoc-bench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		GeneratedA: time.Now().UTC().Format(time.RFC3339),
	}
	for _, sp := range specs {
		sc := measure(sp, warmup, cycles)
		fmt.Printf("%-26s %9.1f ns/cycle  %7.4f allocs/cycle  %9.1f B/cycle\n",
			sc.Name, sc.NsPerCycle, sc.AllocsPerCycle, sc.BytesPerCycle)
		r.Scenarios = append(r.Scenarios, sc)
	}
	// Tracing overhead: the fig4 TDM tornado scenario re-run with the
	// recorder attached, compared against its untraced measurement above.
	tr := measureTraced(specs[1], warmup, cycles, r.Scenarios[1].NsPerCycle)
	fmt.Printf("%-26s %9.1f ns/cycle traced (%+.1f%% vs untraced)  %7.4f allocs/cycle  %5.1f events/cycle\n",
		tr.Name+"+obs", tr.NsPerCycle, 100*tr.OverheadFraction, tr.AllocsPerCycle, tr.EventsPerCycle)
	r.Traced = append(r.Traced, tr)
	for _, sp := range specs[:3] { // digest checks cover the 6x6 set
		d := checkDigest(sp, digestCycles)
		fmt.Printf("%-26s serial=%s workers4=%s match=%v\n", d.Name, d.SerialDigest, d.Workers4, d.Match)
		r.Digests = append(r.Digests, d)
	}
	return r
}

// strictViolations lists why a report fails the -strict gate (empty =
// pass). Hot-path allocation is gated on the 6x6 Fig. 4 scenarios; the
// determinism digests must match on every checked pair.
func strictViolations(r Report) []string {
	var out []string
	for _, sc := range r.Scenarios {
		if sc.Figure == "fig4" && !sc.HotPathZeroAlloc {
			out = append(out, fmt.Sprintf("%s: %.4f allocs/cycle exceeds the zero-alloc budget %.2f",
				sc.Name, sc.AllocsPerCycle, zeroAllocBudget))
		}
	}
	for _, tr := range r.Traced {
		if !tr.TracedZeroAlloc {
			out = append(out, fmt.Sprintf("%s (traced): %.4f allocs/cycle exceeds the zero-alloc budget %.2f",
				tr.Name, tr.AllocsPerCycle, zeroAllocBudget))
		}
	}
	for _, d := range r.Digests {
		if !d.Match {
			out = append(out, fmt.Sprintf("%s: serial digest %s != workers4 digest %s",
				d.Name, d.SerialDigest, d.Workers4))
		}
		if !d.InvariantsOK {
			out = append(out, fmt.Sprintf("%s: runtime invariant violations detected", d.Name))
		}
	}
	return out
}

func main() {
	out := flag.String("o", "BENCH_PR3.json", "output JSON path")
	quick := flag.Bool("quick", false, "short windows for CI smoke runs")
	strict := flag.Bool("strict", false, "exit nonzero on hot-path allocations or digest mismatch")
	flag.Parse()

	r := buildReport(*quick)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *strict {
		if v := strictViolations(r); len(v) != 0 {
			for _, msg := range v {
				fmt.Fprintln(os.Stderr, "bench: STRICT FAIL:", msg)
			}
			os.Exit(1)
		}
		fmt.Println("strict gate: ok")
	}
}
