// Command bench is the reproducible performance harness for the
// simulator's cycle hot path. It runs miniature versions of the paper's
// Fig. 4 (6x6 synthetic load curves) and Fig. 6 (8x8 scalability)
// configurations, measures wall time and allocator traffic per
// simulated cycle, cross-checks the serial-vs-parallel determinism
// digests, measures parallel-executor scaling, and writes everything as
// one JSON document (schema "tdmnoc-bench/v2" — v1 plus the "parallel"
// section; see README).
//
// Usage:
//
//	go run ./cmd/bench [-o BENCH_PR5.json] [-quick] [-strict]
//	                   [-baseline BENCH_PR3.json] [-max-regression 0.15]
//
// -quick shortens the warmup/measure windows for CI smoke use.
// -strict exits nonzero when the steady-state hot path allocates (any
// Fig. 4 or Fig. 6 miniature above zeroAllocBudget allocs/cycle, with
// or without the observability recorder attached), when a determinism
// digest mismatches, or when the parallel-scaling gates fail — the CI
// regression gate. One scenario is re-run with tracing enabled and its
// ns/cycle delta against the untraced baseline is reported in the
// "traced" section.
//
// The "parallel" section measures the spin-barrier executor at worker
// counts {1, 2, 4, 8} on 6x6 and 16x16 hybrid-TDM meshes, reporting
// ns/cycle, speedup over serial, allocs/cycle, and whether the run's
// determinism digest matches the serial one. Speedup is only gated when
// the machine actually has the cores (GOMAXPROCS >= workers); digest
// equality is gated unconditionally.
//
// -baseline compares this run's serial Fig. 4 ns/cycle against a
// previously committed report and exits nonzero when any scenario
// regressed by more than -max-regression (fractional, default 0.15).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"tdmnoc/hsnoc"
)

// Report is the top-level JSON document.
type Report struct {
	Schema     string           `json:"schema"`
	GoVersion  string           `json:"go_version"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Quick      bool             `json:"quick"`
	GeneratedA string           `json:"generated_at"`
	Scenarios  []Scenario       `json:"scenarios"`
	Traced     []TracedScenario `json:"traced"`
	Digests    []DigestCheck    `json:"determinism"`
	Parallel   []ParallelPoint  `json:"parallel"`
}

// ParallelPoint is one (mesh, worker-count) measurement of the parallel
// executor's scaling behaviour.
type ParallelPoint struct {
	Name    string `json:"name"`
	Width   int    `json:"width"`
	Height  int    `json:"height"`
	Workers int    `json:"workers"`

	NsPerCycle     float64 `json:"ns_per_cycle"`
	SerialNs       float64 `json:"serial_ns_per_cycle"`
	Speedup        float64 `json:"speedup"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	// DigestMatch reports whether a checked run at this worker count
	// reproduced the serial run's rolling digest bit-for-bit.
	DigestMatch bool `json:"digest_match"`
	// SpeedupMeasurable is false when the machine has fewer cores than
	// workers (GOMAXPROCS < workers): the goroutines then time-share one
	// core and speedup is meaningless, so the strict gate skips it.
	SpeedupMeasurable bool `json:"speedup_measurable"`
}

// Scenario is one measured configuration.
type Scenario struct {
	Name    string  `json:"name"`
	Figure  string  `json:"figure"`
	Width   int     `json:"width"`
	Height  int     `json:"height"`
	Mode    string  `json:"mode"`
	Pattern string  `json:"pattern"`
	Rate    float64 `json:"rate"`

	WarmupCycles   int `json:"warmup_cycles"`
	MeasuredCycles int `json:"measured_cycles"`

	NsPerCycle     float64 `json:"ns_per_cycle"`
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`
	// HotPathZeroAlloc reports whether the steady-state loop stayed
	// within zeroAllocBudget (amortised zero: only rare reconfiguration
	// events may allocate, never the per-cycle pipeline).
	HotPathZeroAlloc bool `json:"hot_path_zero_alloc"`
}

// TracedScenario measures one scenario with the observability recorder
// attached: the per-cycle cost of tracing relative to the untraced
// baseline, and whether the enabled path stayed allocation-free.
type TracedScenario struct {
	Name           string  `json:"name"`
	TelemetryEvery int     `json:"telemetry_every"`
	NsPerCycle     float64 `json:"ns_per_cycle"`
	BaselineNs     float64 `json:"baseline_ns_per_cycle"`
	// OverheadFraction is (traced - baseline) / baseline; small negative
	// values are measurement noise.
	OverheadFraction float64 `json:"overhead_fraction"`
	AllocsPerCycle   float64 `json:"allocs_per_cycle"`
	EventsPerCycle   float64 `json:"events_per_cycle"`
	RingDrops        uint64  `json:"ring_drops"`
	// TracedZeroAlloc reports whether the enabled path stayed within
	// zeroAllocBudget — the "tracing on costs time, never garbage" gate.
	TracedZeroAlloc bool `json:"traced_zero_alloc"`
}

// DigestCheck is one serial-vs-parallel determinism comparison.
type DigestCheck struct {
	Name          string `json:"name"`
	Cycles        int    `json:"cycles"`
	SerialDigest  string `json:"serial_digest"`
	Workers4      string `json:"workers4_digest"`
	Match         bool   `json:"match"`
	InvariantsOK  bool   `json:"invariants_ok"`
	CheckInterval int    `json:"check_interval"`
}

// zeroAllocBudget is the allocs/cycle ceiling under which the hot path
// counts as allocation-free: rare circuit-reconfiguration events may
// allocate (circuit block growth), but the per-cycle pipeline must not.
// One alloc per hundred cycles is two orders of magnitude below one
// event per cycle and far below any real hot-path regression.
const zeroAllocBudget = 0.01

type spec struct {
	name, figure  string
	width, height int
	mode          hsnoc.Mode
	pattern       hsnoc.Pattern
	rate          float64
	workers       int // 0 = serial
}

func specConfig(sp spec) hsnoc.Config {
	cfg := hsnoc.DefaultConfig(sp.width, sp.height)
	cfg.Mode = sp.mode
	if sp.mode == hsnoc.HybridTDM {
		cfg.PathSharing = true
	}
	cfg.VCPowerGating = true
	cfg.Seed = 7
	if sp.workers > 1 {
		cfg.Workers = sp.workers
	}
	return cfg
}

func modeName(m hsnoc.Mode) string {
	if m == hsnoc.HybridTDM {
		return "hybrid-tdm"
	}
	return "packet-switched"
}

func patternName(p hsnoc.Pattern) string {
	switch p {
	case hsnoc.Tornado:
		return "tornado"
	case hsnoc.UniformRandom:
		return "uniform"
	case hsnoc.Transpose:
		return "transpose"
	default:
		return fmt.Sprintf("pattern-%d", int(p))
	}
}

// measure runs one scenario: warm up past the allocator transient, then
// time a fixed run with the memstats deltas around it. The warmup also
// fills the packet pools, so the measured window sees the steady state
// the simulator spends virtually all of a long experiment in.
func measure(sp spec, warmup, cycles int) Scenario {
	cfg := specConfig(sp)
	s := hsnoc.NewSynthetic(cfg, sp.pattern, sp.rate)
	defer s.Close()
	s.Warmup(warmup)

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	s.Warmup(cycles) // Warmup == Run without stats finalisation
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)

	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(cycles)
	return Scenario{
		Name: sp.name, Figure: sp.figure,
		Width: sp.width, Height: sp.height,
		Mode: modeName(sp.mode), Pattern: patternName(sp.pattern), Rate: sp.rate,
		WarmupCycles: warmup, MeasuredCycles: cycles,
		NsPerCycle:       float64(elapsed.Nanoseconds()) / float64(cycles),
		AllocsPerCycle:   allocs,
		BytesPerCycle:    float64(m1.TotalAlloc-m0.TotalAlloc) / float64(cycles),
		HotPathZeroAlloc: allocs <= zeroAllocBudget,
	}
}

// measureTraced re-runs a scenario with the observability recorder
// attached and reports the per-cycle delta against the untraced
// baseline. The ring is sized to wrap during the run, so the measured
// window exercises the drop-oldest steady state, not an idle buffer.
func measureTraced(sp spec, warmup, cycles int, baseline float64) TracedScenario {
	const every = 64
	cfg := specConfig(sp)
	s := hsnoc.NewSynthetic(cfg, sp.pattern, sp.rate)
	defer s.Close()
	rec, err := s.AttachTelemetry(hsnoc.TelemetryOptions{Every: every, RingCapacity: 1 << 14})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	s.Warmup(warmup)

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	e0 := rec.Events()
	t0 := time.Now()
	s.Warmup(cycles)
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)

	ns := float64(elapsed.Nanoseconds()) / float64(cycles)
	allocs := float64(m1.Mallocs-m0.Mallocs) / float64(cycles)
	return TracedScenario{
		Name:             sp.name,
		TelemetryEvery:   every,
		NsPerCycle:       ns,
		BaselineNs:       baseline,
		OverheadFraction: (ns - baseline) / baseline,
		AllocsPerCycle:   allocs,
		EventsPerCycle:   float64(rec.Events()-e0) / float64(cycles),
		RingDrops:        rec.Dropped(),
		TracedZeroAlloc:  allocs <= zeroAllocBudget,
	}
}

// digestRun produces the rolling invariant digest of one checked run.
func digestRun(sp spec, workers, cycles int) (uint64, bool) {
	cfg := specConfig(sp)
	cfg.Workers = workers
	cfg.CheckInvariants = true
	cfg.CheckInterval = 1
	s := hsnoc.NewSynthetic(cfg, sp.pattern, sp.rate)
	defer s.Close()
	s.Warmup(cycles / 2)
	s.Run(cycles)
	return s.RollingDigest(), s.InvariantError() == nil
}

func checkDigest(sp spec, cycles int) DigestCheck {
	serial, okS := digestRun(sp, 1, cycles)
	par, okP := digestRun(sp, 4, cycles)
	return DigestCheck{
		Name:         sp.name,
		Cycles:       cycles,
		SerialDigest: fmt.Sprintf("%#016x", serial),
		Workers4:     fmt.Sprintf("%#016x", par),
		Match:        serial == par,
		InvariantsOK: okS && okP, CheckInterval: 1,
	}
}

// buildReport runs the whole suite. Split from main so the smoke test
// can drive it without exec'ing the binary.
func buildReport(quick bool) Report {
	warmup, cycles, digestCycles := 40000, 30000, 2000
	if quick {
		// Uniform traffic keeps discovering new source/destination pairs
		// (circuit map growth, pool stocking) well past 10k cycles, so the
		// quick warmup cannot be much shorter than this without the
		// transient leaking into the measured window.
		warmup, cycles, digestCycles = 20000, 6000, 600
	}
	specs := []spec{
		{"fig4-ps-tornado-0.20", "fig4", 6, 6, hsnoc.PacketSwitched, hsnoc.Tornado, 0.20, 0},
		{"fig4-tdm-tornado-0.20", "fig4", 6, 6, hsnoc.HybridTDM, hsnoc.Tornado, 0.20, 0},
		{"fig4-tdm-uniform-0.35", "fig4", 6, 6, hsnoc.HybridTDM, hsnoc.UniformRandom, 0.35, 0},
		{"fig6-tdm-transpose-0.20", "fig6", 8, 8, hsnoc.HybridTDM, hsnoc.Transpose, 0.20, 0},
	}
	r := Report{
		Schema:     "tdmnoc-bench/v2",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      quick,
		GeneratedA: time.Now().UTC().Format(time.RFC3339),
	}
	for _, sp := range specs {
		sc := measure(sp, warmup, cycles)
		fmt.Printf("%-26s %9.1f ns/cycle  %7.4f allocs/cycle  %9.1f B/cycle\n",
			sc.Name, sc.NsPerCycle, sc.AllocsPerCycle, sc.BytesPerCycle)
		r.Scenarios = append(r.Scenarios, sc)
	}
	// Tracing overhead: the fig4 TDM tornado scenario re-run with the
	// recorder attached, compared against its untraced measurement above.
	tr := measureTraced(specs[1], warmup, cycles, r.Scenarios[1].NsPerCycle)
	fmt.Printf("%-26s %9.1f ns/cycle traced (%+.1f%% vs untraced)  %7.4f allocs/cycle  %5.1f events/cycle\n",
		tr.Name+"+obs", tr.NsPerCycle, 100*tr.OverheadFraction, tr.AllocsPerCycle, tr.EventsPerCycle)
	r.Traced = append(r.Traced, tr)
	for _, sp := range specs[:3] { // digest checks cover the 6x6 set
		d := checkDigest(sp, digestCycles)
		fmt.Printf("%-26s serial=%s workers4=%s match=%v\n", d.Name, d.SerialDigest, d.Workers4, d.Match)
		r.Digests = append(r.Digests, d)
	}
	// Parallel scaling: the spin-barrier executor at 1/2/4/8 workers on a
	// small and a large hybrid-TDM mesh. The 6x6 points document that
	// parallelism does not pay below ~16x16; the 16x16 points carry the
	// speedup gate. Every parallel point also re-derives the determinism
	// digest so a scheduling bug cannot hide behind a fast wrong answer.
	for _, base := range []spec{
		{name: "scale-tdm-6x6-tornado-0.20", figure: "scaling", width: 6, height: 6,
			mode: hsnoc.HybridTDM, pattern: hsnoc.Tornado, rate: 0.20},
		{name: "scale-tdm-16x16-tornado-0.20", figure: "scaling", width: 16, height: 16,
			mode: hsnoc.HybridTDM, pattern: hsnoc.Tornado, rate: 0.20},
	} {
		serialDigest, _ := digestRun(base, 1, digestCycles)
		var serialNs float64
		for _, w := range []int{1, 2, 4, 8} {
			sp := base
			sp.workers = w
			sc := measure(sp, warmup, cycles)
			if w == 1 {
				serialNs = sc.NsPerCycle
			}
			match := true
			if w > 1 {
				d, ok := digestRun(base, w, digestCycles)
				match = ok && d == serialDigest
			}
			pt := ParallelPoint{
				Name: base.name, Width: base.width, Height: base.height, Workers: w,
				NsPerCycle: sc.NsPerCycle, SerialNs: serialNs,
				Speedup:        serialNs / sc.NsPerCycle,
				AllocsPerCycle: sc.AllocsPerCycle,
				DigestMatch:    match,
				SpeedupMeasurable: w == 1 ||
					runtime.GOMAXPROCS(0) >= w,
			}
			fmt.Printf("%-28s w=%d %9.1f ns/cycle  speedup %.2fx  %7.4f allocs/cycle  digest_match=%v\n",
				pt.Name, pt.Workers, pt.NsPerCycle, pt.Speedup, pt.AllocsPerCycle, pt.DigestMatch)
			r.Parallel = append(r.Parallel, pt)
		}
	}
	return r
}

// strictViolations lists why a report fails the -strict gate (empty =
// pass). Hot-path allocation is gated on every Fig. 4 and Fig. 6
// miniature — the packet pools scale with mesh area, so the 8x8
// scenarios owe the same zero-alloc steady state as the 6x6 ones; the
// determinism digests must match on every checked pair.
func strictViolations(r Report) []string {
	var out []string
	for _, sc := range r.Scenarios {
		if !sc.HotPathZeroAlloc {
			out = append(out, fmt.Sprintf("%s: %.4f allocs/cycle exceeds the zero-alloc budget %.2f",
				sc.Name, sc.AllocsPerCycle, zeroAllocBudget))
		}
	}
	for _, tr := range r.Traced {
		if !tr.TracedZeroAlloc {
			out = append(out, fmt.Sprintf("%s (traced): %.4f allocs/cycle exceeds the zero-alloc budget %.2f",
				tr.Name, tr.AllocsPerCycle, zeroAllocBudget))
		}
	}
	for _, d := range r.Digests {
		if !d.Match {
			out = append(out, fmt.Sprintf("%s: serial digest %s != workers4 digest %s",
				d.Name, d.SerialDigest, d.Workers4))
		}
		if !d.InvariantsOK {
			out = append(out, fmt.Sprintf("%s: runtime invariant violations detected", d.Name))
		}
	}
	for _, p := range r.Parallel {
		if !p.DigestMatch {
			out = append(out, fmt.Sprintf("%s w=%d: determinism digest diverged from serial", p.Name, p.Workers))
		}
		// The headline acceptance point: 4 workers on the 16x16 mesh must
		// be at least 2x faster than serial — but only on machines that
		// can physically run 4 workers in parallel.
		if p.Workers == 4 && p.Width >= 16 && p.SpeedupMeasurable && p.Speedup < 2.0 {
			out = append(out, fmt.Sprintf("%s w=%d: speedup %.2fx below the 2x floor", p.Name, p.Workers, p.Speedup))
		}
	}
	return out
}

// baselineViolations compares this run's serial Fig. 4 ns/cycle numbers
// against a previously committed report, printing every ratio and
// returning one entry per scenario that regressed beyond maxRegress
// (fractional; 0.15 = 15% slower). Only Fig. 4 scenarios are gated:
// they are the serial hot-path anchors the zero-alloc budget also uses.
func baselineViolations(r, base Report, maxRegress float64) []string {
	baseNs := make(map[string]float64, len(base.Scenarios))
	for _, sc := range base.Scenarios {
		baseNs[sc.Name] = sc.NsPerCycle
	}
	var out []string
	for _, sc := range r.Scenarios {
		old, ok := baseNs[sc.Name]
		if !ok || old <= 0 {
			continue
		}
		ratio := sc.NsPerCycle / old
		fmt.Printf("%-26s baseline %9.1f ns/cycle  now %9.1f  ratio %.3f\n", sc.Name, old, sc.NsPerCycle, ratio)
		if sc.Figure == "fig4" && ratio > 1+maxRegress {
			out = append(out, fmt.Sprintf("%s: %.1f ns/cycle is %.1f%% over the %.1f ns/cycle baseline (max +%.0f%%)",
				sc.Name, sc.NsPerCycle, 100*(ratio-1), old, 100*maxRegress))
		}
	}
	return out
}

func main() {
	out := flag.String("o", "BENCH_PR5.json", "output JSON path")
	quick := flag.Bool("quick", false, "short windows for CI smoke runs")
	strict := flag.Bool("strict", false, "exit nonzero on hot-path allocations, digest mismatch, or scaling-gate failure")
	baseline := flag.String("baseline", "", "committed report to gate serial Fig. 4 ns/cycle regressions against")
	maxRegress := flag.Float64("max-regression", 0.15, "allowed fractional ns/cycle regression vs -baseline")
	flag.Parse()

	r := buildReport(*quick)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	fail := false
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parsing %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		for _, msg := range baselineViolations(r, base, *maxRegress) {
			fmt.Fprintln(os.Stderr, "bench: REGRESSION:", msg)
			fail = true
		}
	}
	if *strict {
		if v := strictViolations(r); len(v) != 0 {
			for _, msg := range v {
				fmt.Fprintln(os.Stderr, "bench: STRICT FAIL:", msg)
			}
			fail = true
		} else {
			fmt.Println("strict gate: ok")
		}
	}
	if fail {
		os.Exit(1)
	}
}
