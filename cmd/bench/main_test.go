package main

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"tdmnoc/hsnoc"
)

// tinySpec is a scaled-down Fig. 4 configuration for schema tests: the
// shape of the output is independent of the window lengths.
var tinySpec = spec{
	name: "smoke-tdm-tornado", figure: "fig4",
	width: 4, height: 4,
	mode: hsnoc.HybridTDM, pattern: hsnoc.Tornado, rate: 0.10,
}

// TestReportJSONSchema drives the harness end to end on tiny windows and
// checks the emitted JSON document carries every field a downstream
// consumer (CI artifact diffing, EXPERIMENTS.md tables) keys on.
func TestReportJSONSchema(t *testing.T) {
	r := Report{
		Schema:     "tdmnoc-bench/v4",
		GoVersion:  "go-test",
		GOMAXPROCS: 1,
		Quick:      true,
		GeneratedA: "2000-01-01T00:00:00Z",
		Scenarios:  []Scenario{measure(tinySpec, 200, 100)},
		Traced:     []TracedScenario{measureTraced(tinySpec, 200, 100)},
		Parity:     []TracedParity{checkParity(tinySpec, 200, "")},
		Digests:    []DigestCheck{checkDigest(tinySpec, 200)},
		LargeMesh:  measureLargeMesh([]largeMeshSize{{4, 4, 200, 100, 100, true}}, []int{1, 2}),
		Parallel: []ParallelPoint{{
			Name: "smoke-scale", Width: 4, Height: 4, Workers: 2,
			NsPerCycle: 1, SerialNs: 2, Speedup: 2,
			DigestMatch: true, SpeedupMeasurable: true,
		}},
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got := doc["schema"]; got != "tdmnoc-bench/v4" {
		t.Fatalf("schema = %v, want tdmnoc-bench/v4", got)
	}
	for _, key := range []string{"go_version", "gomaxprocs", "quick", "generated_at", "scenarios", "traced_parity", "determinism", "parallel", "large_mesh"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report missing top-level key %q", key)
		}
	}

	scenarios, ok := doc["scenarios"].([]any)
	if !ok || len(scenarios) != 1 {
		t.Fatalf("scenarios = %v, want one entry", doc["scenarios"])
	}
	sc := scenarios[0].(map[string]any)
	for _, key := range []string{
		"name", "figure", "width", "height", "mode", "pattern", "rate",
		"warmup_cycles", "measured_cycles",
		"ns_per_cycle", "allocs_per_cycle", "bytes_per_cycle",
		"resident_bytes", "bytes_per_router", "hot_path_zero_alloc",
	} {
		if _, ok := sc[key]; !ok {
			t.Errorf("scenario missing key %q", key)
		}
	}
	if sc["mode"] != "hybrid-tdm" || sc["pattern"] != "tornado" {
		t.Errorf("scenario mode/pattern = %v/%v, want hybrid-tdm/tornado", sc["mode"], sc["pattern"])
	}
	if ns := sc["ns_per_cycle"].(float64); ns <= 0 {
		t.Errorf("ns_per_cycle = %v, want > 0", ns)
	}

	traced, ok := doc["traced"].([]any)
	if !ok || len(traced) != 1 {
		t.Fatalf("traced = %v, want one entry", doc["traced"])
	}
	tr := traced[0].(map[string]any)
	for _, key := range []string{
		"name", "telemetry_every", "profile", "kind_mask", "ring_sample",
		"ns_per_cycle", "baseline_ns_per_cycle",
		"overhead_fraction", "allocs_per_cycle", "events_per_cycle", "ring_drops",
		"traced_zero_alloc", "ring_capacity",
	} {
		if _, ok := tr[key]; !ok {
			t.Errorf("traced scenario missing key %q", key)
		}
	}
	if p := tr["profile"]; p != "flows" {
		t.Errorf("traced profile = %v, want %q", p, "flows")
	}
	if ev := tr["events_per_cycle"].(float64); ev <= 0 {
		t.Errorf("events_per_cycle = %v, want > 0 with the recorder attached", ev)
	}
	if drops := tr["ring_drops"].(float64); drops != 0 {
		t.Errorf("ring_drops = %v, want 0 — the traced ring is sized drop-free", drops)
	}

	parity, ok := doc["traced_parity"].([]any)
	if !ok || len(parity) != 1 {
		t.Fatalf("traced_parity = %v, want one entry", doc["traced_parity"])
	}
	pe := parity[0].(map[string]any)
	for _, key := range []string{"name", "cycles", "untraced_serial_digest", "points"} {
		if _, ok := pe[key]; !ok {
			t.Errorf("traced_parity entry missing key %q", key)
		}
	}
	points, ok := pe["points"].([]any)
	if !ok || len(points) != 3 {
		t.Fatalf("traced_parity points = %v, want the {1,4,8} worker matrix", pe["points"])
	}
	for i, raw := range points {
		pp := raw.(map[string]any)
		for _, key := range []string{"workers", "digest", "digest_match", "trace_match", "trace_bytes", "ring_drops", "invariants_ok"} {
			if _, ok := pp[key]; !ok {
				t.Errorf("parity point %d missing key %q", i, key)
			}
		}
		if pp["digest_match"] != true || pp["trace_match"] != true {
			t.Errorf("parity point %d: digest_match=%v trace_match=%v on the smoke config",
				i, pp["digest_match"], pp["trace_match"])
		}
		if drops := pp["ring_drops"].(float64); drops != 0 {
			t.Errorf("parity point %d dropped %v ring events", i, drops)
		}
	}

	digests, ok := doc["determinism"].([]any)
	if !ok || len(digests) != 1 {
		t.Fatalf("determinism = %v, want one entry", doc["determinism"])
	}
	d := digests[0].(map[string]any)
	for _, key := range []string{"name", "cycles", "serial_digest", "workers4_digest", "match", "invariants_ok", "check_interval"} {
		if _, ok := d[key]; !ok {
			t.Errorf("digest check missing key %q", key)
		}
	}

	parallel, ok := doc["parallel"].([]any)
	if !ok || len(parallel) != 1 {
		t.Fatalf("parallel = %v, want one entry", doc["parallel"])
	}
	p := parallel[0].(map[string]any)
	for _, key := range []string{
		"name", "width", "height", "workers", "ns_per_cycle", "serial_ns_per_cycle",
		"speedup", "allocs_per_cycle", "digest_match", "speedup_measurable",
	} {
		if _, ok := p[key]; !ok {
			t.Errorf("parallel point missing key %q", key)
		}
	}
	if d["match"] != true {
		t.Errorf("serial digest %v != workers4 digest %v on the smoke config",
			d["serial_digest"], d["workers4_digest"])
	}
	if d["invariants_ok"] != true {
		t.Error("invariant violations on the smoke config")
	}

	largeMesh, ok := doc["large_mesh"].([]any)
	if !ok || len(largeMesh) != 2 {
		t.Fatalf("large_mesh = %v, want the {1,2} worker matrix", doc["large_mesh"])
	}
	for i, raw := range largeMesh {
		lp := raw.(map[string]any)
		for _, key := range []string{
			"name", "width", "height", "workers", "ns_per_cycle", "allocs_per_cycle",
			"resident_bytes", "bytes_per_router", "serial_ns_per_cycle", "speedup",
			"speedup_measurable", "digest_checked", "digest_match",
		} {
			if _, ok := lp[key]; !ok {
				t.Errorf("large-mesh point %d missing key %q", i, key)
			}
		}
		if lp["digest_checked"] != true || lp["digest_match"] != true {
			t.Errorf("large-mesh point %d: digest_checked=%v digest_match=%v on the smoke config",
				i, lp["digest_checked"], lp["digest_match"])
		}
	}
}

// TestStrictViolations pins the gate logic: every scenario — fig4 and
// fig6 alike — is gated on hot-path allocations, every digest pair on
// match + invariants.
func TestStrictViolations(t *testing.T) {
	ok := Report{
		Scenarios: []Scenario{
			{Name: "a", Figure: "fig4", HotPathZeroAlloc: true},
			{Name: "b", Figure: "fig6", HotPathZeroAlloc: true},
		},
		Traced:  []TracedScenario{{Name: "a", TracedZeroAlloc: true}},
		Digests: []DigestCheck{{Name: "a", Match: true, InvariantsOK: true}},
	}
	if v := strictViolations(ok); len(v) != 0 {
		t.Fatalf("clean report flagged: %v", v)
	}

	// A fig6 miniature allocating on the hot path now fails the gate
	// just like a fig4 one: the pools scale with mesh area.
	leaky := ok
	leaky.Scenarios = []Scenario{{Name: "b", Figure: "fig6", AllocsPerCycle: 0.25}}
	if v := strictViolations(leaky); len(v) != 1 {
		t.Fatalf("violations = %v, want the fig6 alloc entry", v)
	}

	bad := ok
	bad.Scenarios = []Scenario{{Name: "a", Figure: "fig4", AllocsPerCycle: 0.5}}
	bad.Traced = []TracedScenario{{Name: "a", AllocsPerCycle: 0.7, TracedZeroAlloc: false}}
	bad.Digests = []DigestCheck{{Name: "a", Match: false}}
	if v := strictViolations(bad); len(v) != 4 {
		t.Fatalf("violations = %v, want alloc + traced-alloc + mismatch + invariant entries", v)
	}
}

// TestStrictTracedGates pins the new traced-section gates: overhead
// beyond the tracing budget and any ring drop each fail -strict, and
// every parity point is gated on digest match, trace match, drops and
// invariants independently.
func TestStrictTracedGates(t *testing.T) {
	slow := Report{Traced: []TracedScenario{{Name: "a", OverheadFraction: 0.17, TracedZeroAlloc: true}}}
	if v := strictViolations(slow); len(v) != 1 {
		t.Fatalf("violations = %v, want the overhead entry", v)
	}
	droppy := Report{Traced: []TracedScenario{{Name: "a", RingDrops: 9, TracedZeroAlloc: true}}}
	if v := strictViolations(droppy); len(v) != 1 {
		t.Fatalf("violations = %v, want the ring-drops entry", v)
	}
	within := Report{Traced: []TracedScenario{{Name: "a", OverheadFraction: 0.09, TracedZeroAlloc: true}}}
	if v := strictViolations(within); len(v) != 0 {
		t.Fatalf("within-budget overhead flagged: %v", v)
	}

	cleanPt := ParityPoint{Workers: 4, DigestMatch: true, TraceMatch: true, InvariantsOK: true}
	clean := Report{Parity: []TracedParity{{Name: "p", Points: []ParityPoint{cleanPt}}}}
	if v := strictViolations(clean); len(v) != 0 {
		t.Fatalf("clean parity flagged: %v", v)
	}
	badPt := ParityPoint{Workers: 8, DigestMatch: false, TraceMatch: false, RingDrops: 3, InvariantsOK: false}
	broken := Report{Parity: []TracedParity{{Name: "p", Points: []ParityPoint{badPt}}}}
	if v := strictViolations(broken); len(v) != 4 {
		t.Fatalf("violations = %v, want digest + trace + drops + invariant entries", v)
	}
}

// TestStrictParallelGates pins the scaling-section gate logic: digest
// divergence always fails; a sub-2x speedup at 4 workers fails only on
// a 16x16-or-larger mesh AND only when the machine has the cores.
func TestStrictParallelGates(t *testing.T) {
	cases := []struct {
		p    ParallelPoint
		want int
	}{
		{ParallelPoint{Workers: 4, Width: 16, Speedup: 2.4, DigestMatch: true, SpeedupMeasurable: true}, 0},
		{ParallelPoint{Workers: 4, Width: 16, Speedup: 1.4, DigestMatch: true, SpeedupMeasurable: true}, 1},
		{ParallelPoint{Workers: 4, Width: 16, Speedup: 1.4, DigestMatch: true, SpeedupMeasurable: false}, 0},
		{ParallelPoint{Workers: 4, Width: 6, Speedup: 0.4, DigestMatch: true, SpeedupMeasurable: true}, 0},
		{ParallelPoint{Workers: 2, Width: 16, Speedup: 1.1, DigestMatch: false, SpeedupMeasurable: true}, 1},
	}
	for i, c := range cases {
		if v := strictViolations(Report{Parallel: []ParallelPoint{c.p}}); len(v) != c.want {
			t.Errorf("case %d: violations = %v, want %d", i, v, c.want)
		}
	}
}

// TestBaselineViolations pins the -baseline regression gate: only
// Fig. 4 scenarios are gated, only beyond the allowed fraction, and
// scenarios absent from the baseline are ignored.
func TestBaselineViolations(t *testing.T) {
	base := Report{Scenarios: []Scenario{
		{Name: "a", Figure: "fig4", NsPerCycle: 1000},
		{Name: "b", Figure: "fig6", NsPerCycle: 1000},
	}}
	now := Report{Scenarios: []Scenario{
		{Name: "a", Figure: "fig4", NsPerCycle: 1100}, // +10%: within a 15% budget
		{Name: "b", Figure: "fig6", NsPerCycle: 9000}, // fig6 is informational
		{Name: "c", Figure: "fig4", NsPerCycle: 9000}, // not in baseline
	}}
	if v := baselineViolations(now, base, 0.15); len(v) != 0 {
		t.Fatalf("within-budget report flagged: %v", v)
	}
	now.Scenarios[0].NsPerCycle = 1200 // +20%
	v := baselineViolations(now, base, 0.15)
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the fig4 regression", v)
	}
}

// TestStrictLargeMeshGates pins the large-mesh gate logic: every point
// is gated on the zero-alloc budget; digest divergence fails only where
// a digest pass actually ran (the bigger sizes record a serial digest
// but skip the per-worker matrix).
func TestStrictLargeMeshGates(t *testing.T) {
	clean := Report{LargeMesh: []LargeMeshPoint{
		{Scenario: Scenario{Name: "a", HotPathZeroAlloc: true}, Workers: 1, DigestChecked: true, DigestMatch: true},
		{Scenario: Scenario{Name: "a", HotPathZeroAlloc: true}, Workers: 8},
	}}
	if v := strictViolations(clean); len(v) != 0 {
		t.Fatalf("clean large-mesh report flagged: %v", v)
	}
	bad := Report{LargeMesh: []LargeMeshPoint{
		{Scenario: Scenario{Name: "a", AllocsPerCycle: 0.3}, Workers: 1},
		{Scenario: Scenario{Name: "a", HotPathZeroAlloc: true}, Workers: 8, DigestChecked: true, DigestMatch: false},
	}}
	if v := strictViolations(bad); len(v) != 2 {
		t.Fatalf("violations = %v, want the alloc + digest entries", v)
	}
}

// TestBuildPrelayout pins the old-layout join: points match by mesh
// size against the serial row, improvements are fractional ("0.2 =
// 20% faster / smaller"), and sizes missing from either side are
// skipped rather than invented.
func TestBuildPrelayout(t *testing.T) {
	old := `{
		"schema": "tdmnoc-bench-oldlayout/v1",
		"note": "test capture",
		"largemesh": [
			{"name": "large-tdm-8x8-tornado-0.20", "width": 8, "height": 8,
			 "ns_per_cycle": 1000, "resident_bytes": 4000, "digest": "0xabc"},
			{"name": "large-tdm-16x16-tornado-0.20", "width": 16, "height": 16,
			 "ns_per_cycle": 9000, "resident_bytes": 9000, "digest": "0xdef"}
		]
	}`
	path := t.TempDir() + "/old.json"
	if err := os.WriteFile(path, []byte(old), 0o644); err != nil {
		t.Fatal(err)
	}
	r := Report{LargeMesh: []LargeMeshPoint{
		{Scenario: Scenario{Width: 8, Height: 8, NsPerCycle: 800, ResidentBytes: 1000}, Workers: 1, Digest: "0xabc"},
		{Scenario: Scenario{Width: 8, Height: 8, NsPerCycle: 500, ResidentBytes: 1000}, Workers: 8, Digest: "0xabc"},
	}}
	p, err := buildPrelayout(r, path)
	if err != nil {
		t.Fatalf("buildPrelayout: %v", err)
	}
	if p.Note != "test capture" || p.Source != path {
		t.Errorf("note/source = %q/%q", p.Note, p.Source)
	}
	if len(p.Points) != 1 {
		t.Fatalf("points = %+v, want only the 8x8 join (16x16 has no new-layout row)", p.Points)
	}
	pp := p.Points[0]
	if pp.NewNsPerCycle != 800 {
		t.Errorf("joined the w=%d row? new ns/cycle = %v, want the serial 800", 8, pp.NewNsPerCycle)
	}
	if got, want := pp.NsImprovement, 0.2; math.Abs(got-want) > 1e-9 {
		t.Errorf("ns improvement = %v, want %v", got, want)
	}
	if got, want := pp.BytesImprovement, 0.75; math.Abs(got-want) > 1e-9 {
		t.Errorf("bytes improvement = %v, want %v", got, want)
	}
	if !pp.DigestMatch {
		t.Error("matching digests reported as mismatch")
	}
}

// TestHotPathAllocationFree is the regression anchor for the tentpole:
// once a Fig. 4 simulator is past its warmup transient, stepping it
// allocates nothing. The run is deterministic (fixed seed, serial
// executor), so an exact zero here is stable, not flaky; the only
// allocations left in a long run are rare circuit-reconfiguration
// events, and the measured window below is chosen clear of them.
func TestHotPathAllocationFree(t *testing.T) {
	if testing.Short() {
		t.Skip("warmup window too long for -short")
	}
	sp := spec{
		name: "alloc-check", figure: "fig4",
		width: 6, height: 6,
		mode: hsnoc.HybridTDM, pattern: hsnoc.Tornado, rate: 0.20,
	}
	s := hsnoc.NewSynthetic(specConfig(sp), sp.pattern, sp.rate)
	defer s.Close()
	s.Warmup(40000)

	const window = 256
	avg := testing.AllocsPerRun(8, func() { s.Warmup(window) })
	if perCycle := avg / window; perCycle != 0 {
		t.Fatalf("steady-state hot path allocates: %.5f allocs/cycle (avg %.1f allocs per %d-cycle window)",
			perCycle, avg, window)
	}
}
