module tdmnoc

go 1.22
