#!/usr/bin/env bash
# End-to-end fleet fabric smoke: a coordinator (with a write-ahead
# journal) and two workers on localhost run a sweep; mid-sweep the
# coordinator is SIGKILLed and restarted (the journal must bring back
# every queued campaign and active lease), then one worker is SIGKILLed
# while it holds a lease (its shard expires and migrates) — and the
# fleet CSV must still match the single-process CSV bit for bit: the
# determinism + durability contract of DESIGN.md §10, exercised through
# real processes, real sockets and a real kill -9.
set -euo pipefail

COORD_PORT="${COORD_PORT:-18080}"
BASE="http://localhost:${COORD_PORT}"
TMP="$(mktemp -d)"
BIN="$TMP/bin"
mkdir -p "$BIN"
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

SWEEP_ARGS=(-mode tdm -pattern tornado -width 10 -height 10
    -from 0.02 -to 0.20 -step 0.02 -warmup 8000 -cycles 72000)

echo "== build"
go build -o "$BIN/nocsimd" ./cmd/nocsimd
go build -o "$BIN/sweep" ./cmd/sweep

echo "== serial reference run"
"$BIN/sweep" "${SWEEP_ARGS[@]}" > "$TMP/serial.csv"

JOURNAL="$TMP/coord/fleet.journal"
start_coordinator() {
    "$BIN/nocsimd" -coordinator -addr ":${COORD_PORT}" -data "$TMP/coord" \
        -journal "$JOURNAL" -shard-size 1 -lease-ttl 3s -pprof=false &
    COORD_PID=$!
    PIDS+=("$COORD_PID")
}

wait_healthy() {
    for _ in $(seq 50); do
        curl -sf "$BASE/healthz" >/dev/null && return 0
        sleep 0.2
    done
    echo "coordinator never came up"
    exit 1
}

echo "== start coordinator + 2 workers"
start_coordinator
for i in 1 2; do
    "$BIN/nocsimd" -worker "$BASE" -addr ":$((COORD_PORT + i))" \
        -data "$TMP/w$i" -pprof=false &
    PIDS+=($!)
done
WORKER1_PID="${PIDS[1]}"

wait_healthy

metric() {
    curl -sf "$BASE/fleet/metrics" | awk -v m="$1" '$1 == m { print $2 }'
}

echo "== fleet run (coordinator restarts, then worker 1 dies, mid-sweep)"
"$BIN/sweep" -fleet "$BASE" "${SWEEP_ARGS[@]}" > "$TMP/fleet.csv" &
SWEEP_PID=$!

# Wait until both workers hold a lease, then SIGKILL the coordinator
# mid-sweep — no drain, no flush beyond the journal's own fsyncs — and
# restart it on the same journal. The sweep client and both workers
# retry through the outage; the restarted coordinator must replay the
# campaign, the queue and both active leases or the sweep hangs/fails.
leased=0
for _ in $(seq 150); do
    if ! kill -0 "$SWEEP_PID" 2>/dev/null; then
        break
    fi
    if [ "$(metric fleet_leases_active || echo 0)" = "2" ]; then
        leased=1
        break
    fi
    sleep 0.2
done
if [ "$leased" != 1 ]; then
    echo "never saw both workers leased; cannot exercise the restart path"
    exit 1
fi
echo "== SIGKILL coordinator (pid $COORD_PID) mid-sweep, restart on journal"
kill -9 "$COORD_PID"
wait "$COORD_PID" 2>/dev/null || true
start_coordinator
wait_healthy
replayed="$(metric fleet_journal_replayed_records || echo 0)"
echo "   restarted coordinator replayed $replayed journal records"
if [ "${replayed:-0}" -lt 1 ]; then
    echo "FAIL: restarted coordinator replayed no journal records"
    exit 1
fi

# Now kill a worker outright while it holds a lease in the restarted
# coordinator; its shard must expire and migrate to the survivor.
killed=0
for _ in $(seq 150); do
    if ! kill -0 "$SWEEP_PID" 2>/dev/null; then
        break
    fi
    if [ "$(metric fleet_leases_active || echo 0)" = "2" ]; then
        echo "== SIGKILL worker 1 (pid $WORKER1_PID) while it holds a lease"
        kill -9 "$WORKER1_PID"
        killed=1
        break
    fi
    sleep 0.2
done
if [ "$killed" != 1 ]; then
    echo "never saw both workers leased after restart; cannot exercise the death path"
    exit 1
fi

wait "$SWEEP_PID"

echo "== verify"
expired="$(metric fleet_leases_expired_total)"
dead="$(metric fleet_store_dead_lines)"
echo "   leases expired: $expired, store dead lines: $dead"
if [ "${expired:-0}" -lt 1 ]; then
    echo "FAIL: killed worker's lease never expired"
    exit 1
fi
if [ "${dead:-0}" != 0 ]; then
    echo "FAIL: sharded store contains duplicate records"
    exit 1
fi
if ! diff -u "$TMP/serial.csv" "$TMP/fleet.csv"; then
    echo "FAIL: fleet results differ from the single-process run"
    exit 1
fi
echo "OK: fleet output is bit-identical to the serial run ($(wc -l < "$TMP/fleet.csv") CSV lines)"
