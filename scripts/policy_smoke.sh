#!/usr/bin/env bash
# End-to-end adaptive-policy smoke: run the committed Fig. 4 miniature
# spec through the offline profile→re-run loop and gate on the two
# promises EXPERIMENTS.md makes for it — the greedy demand-budget
# policy improves energy-per-flit over the static baseline on every
# grid point, and the whole loop is reproducible: a second run against
# the same record and profile stores must be served entirely from
# cache and print a byte-identical CSV.
set -euo pipefail

SPEC="${SPEC:-scenarios/fig4_policy.json}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "== build"
go build -o "$TMP/sweep" ./cmd/sweep

echo "== policy loop, first pass (simulates phase A + phase B)"
"$TMP/sweep" -spec "$SPEC" \
    -results "$TMP/records.jsonl" -profiles "$TMP/profiles.jsonl" \
    > "$TMP/run1.csv"
cat "$TMP/run1.csv"

echo "== gate: greedy beats static on energy-per-flit at every point"
awk -F, '
    NR == 1 { next }
    $2 == "static" && $6 + 0 != 0 {
        printf "FAIL: static row %s has nonzero energy delta %s\n", $1, $6
        bad = 1
    }
    $2 == "greedy" {
        greedy++
        if ($6 + 0 >= 0) {
            printf "FAIL: greedy on %s does not improve energy (%s%%)\n", $1, $6
            bad = 1
        } else {
            printf "   greedy on %s: %s%% energy-per-flit vs static\n", $1, $6
        }
    }
    END {
        if (greedy < 2) {
            printf "FAIL: expected >= 2 greedy rows, saw %d\n", greedy
            bad = 1
        }
        exit bad
    }
' "$TMP/run1.csv"

echo "== policy loop, second pass (must be served from cache)"
"$TMP/sweep" -spec "$SPEC" \
    -results "$TMP/records.jsonl" -profiles "$TMP/profiles.jsonl" \
    > "$TMP/run2.csv"

echo "== gate: re-run output is byte-identical"
if ! diff -u "$TMP/run1.csv" "$TMP/run2.csv"; then
    echo "FAIL: cached policy re-run produced different output"
    exit 1
fi

echo "OK: greedy improves every point and the loop reproduces bit for bit ($(($(wc -l < "$TMP/run1.csv") - 1)) comparison rows)"
