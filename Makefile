# Developer entry points. Everything here is plain go tooling — no
# external dependencies.

GO ?= go

.PHONY: build test test-race bench bench-quick vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# bench runs the reproducible performance harness on the full windows
# and writes BENCH_PR5.json (schema tdmnoc-bench/v2; see README for how
# to read it). -strict makes it a gate: nonzero exit on hot-path
# allocations, a digest mismatch at any worker count, or a missing
# parallel speedup on machines with the cores to show one. -baseline
# additionally fails on a >15% serial ns/cycle regression against the
# committed PR3 report.
bench:
	$(GO) run ./cmd/bench -strict -o BENCH_PR5.json -baseline BENCH_PR3.json

# bench-quick is the CI smoke variant: shorter windows, same gates.
bench-quick:
	$(GO) run ./cmd/bench -quick -strict -o BENCH_PR5.json -baseline BENCH_PR3.json
