# Developer entry points. Everything here is plain go tooling — no
# external dependencies.

GO ?= go

.PHONY: build test test-race bench bench-quick bench-large vet fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# bench runs the reproducible performance harness on the full windows
# and writes BENCH_PR10.json (schema tdmnoc-bench/v4; see README for
# how to read it). -strict makes it a gate: nonzero exit on hot-path
# allocations (miniatures AND large-mesh points), a digest mismatch at
# any worker count, traced overhead/ring drops, or a missing parallel
# speedup on machines with the cores to show one. -baseline
# additionally fails on a >15% serial Fig. 4 ns/cycle regression
# against the committed PR8 report; -prelayout embeds the old-layout
# A/B comparison.
bench:
	$(GO) run ./cmd/bench -strict -o BENCH_PR10.json -baseline BENCH_PR8.json -prelayout BENCH_PR10_OLDLAYOUT.json

# bench-quick is the CI smoke variant: shorter windows, same gates
# (large mesh runs 32x32 only).
bench-quick:
	$(GO) run ./cmd/bench -quick -strict -o BENCH_PR10.json -baseline BENCH_PR8.json

# bench-large adds the 128x128 row to the large-mesh matrix: ~16k
# routers, minutes of runtime and gigabytes of heap. This is the
# configuration the committed BENCH_PR10.json was generated with.
bench-large:
	$(GO) run ./cmd/bench -strict -large -o BENCH_PR10.json -baseline BENCH_PR8.json -prelayout BENCH_PR10_OLDLAYOUT.json
