package hsnoc

import (
	"errors"
	"reflect"
	"testing"
)

// TestSerialParallelEquivalence is the determinism acceptance test:
// a serial and a parallel simulator of the same seeded config must
// match full-state digests at every cycle (failing at the first
// divergence), match rolling digests, and produce deeply equal
// Results, all with the invariant checker clean.
func TestSerialParallelEquivalence(t *testing.T) {
	build := func(workers int) *Simulator {
		cfg := DefaultConfig(6, 6)
		cfg.Mode = HybridTDM
		cfg.Seed = 7
		cfg.Workers = workers
		cfg.CheckInvariants = true
		return NewSynthetic(cfg, Tornado, 0.15)
	}
	serial, parallel := build(1), build(4)
	defer serial.Close()
	defer parallel.Close()

	for c := 0; c < 800; c++ {
		serial.Warmup(1)
		parallel.Warmup(1)
		if ds, dp := serial.StateDigest(), parallel.StateDigest(); ds != dp {
			t.Fatalf("state diverged at cycle %d: serial %016x, parallel %016x", c, ds, dp)
		}
	}
	rs := serial.Run(1200)
	rp := parallel.Run(1200)
	if ds, dp := serial.StateDigest(), parallel.StateDigest(); ds != dp {
		t.Fatalf("final state digests differ: serial %016x, parallel %016x", ds, dp)
	}
	if ds, dp := serial.RollingDigest(), parallel.RollingDigest(); ds != dp {
		t.Fatalf("rolling digests differ: serial %016x, parallel %016x", ds, dp)
	}
	if !reflect.DeepEqual(rs, rp) {
		t.Fatalf("Results differ:\n serial   %+v\n parallel %+v", rs, rp)
	}
	if rs.Packets == 0 {
		t.Fatal("equivalence run carried no traffic")
	}
	if err := serial.InvariantError(); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if err := parallel.InvariantError(); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
}

// TestInvariantAccessorsDisabled checks the zero-cost path: with
// checking off every accessor reports "nothing".
func TestInvariantAccessorsDisabled(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	s := NewSynthetic(cfg, UniformRandom, 0.1)
	defer s.Close()
	s.Warmup(100)
	if s.RollingDigest() != 0 {
		t.Error("rolling digest accumulated with checking disabled")
	}
	if s.InvariantViolations() != nil || s.InvariantViolationCount() != 0 {
		t.Error("violations reported with checking disabled")
	}
	if err := s.InvariantError(); err != nil {
		t.Errorf("InvariantError = %v with checking disabled", err)
	}
	if s.StateDigest() == 0 {
		t.Error("StateDigest should work even with checking disabled")
	}
}

// TestViolationErrorMessage pins the error rendering campaign records
// and logs rely on.
func TestViolationErrorMessage(t *testing.T) {
	e := &ViolationError{Count: 3, Violations: []Violation{
		{Cycle: 41, Router: 14, Kind: "credit", Detail: "vc 0 short one credit"},
	}}
	const want = "hsnoc: 3 invariant violation(s); first: cycle 41 router 14 credit: vc 0 short one credit"
	if got := e.Error(); got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
	var as *ViolationError
	if !errors.As(error(e), &as) {
		t.Error("ViolationError does not satisfy errors.As")
	}
}
