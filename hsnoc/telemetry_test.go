package hsnoc

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden Perfetto trace")

// goldenSim runs the Fig.4-miniature scenario used by the golden trace:
// uniform traffic at 0.35 on a 4x4 hybrid-TDM mesh — loaded enough to
// exercise setups, acks, failures, teardowns and slot steals.
func goldenSim(t *testing.T) *Simulator {
	t.Helper()
	cfg := DefaultConfig(4, 4)
	cfg.Mode = HybridTDM
	cfg.Seed = 1
	s := NewSynthetic(cfg, UniformRandom, 0.35)
	t.Cleanup(s.Close)
	if _, err := s.AttachTelemetry(TelemetryOptions{Every: 64, RingCapacity: 1 << 19}); err != nil {
		t.Fatalf("AttachTelemetry: %v", err)
	}
	s.Warmup(500)
	s.Run(4000)
	return s
}

// TestGoldenPerfettoTrace is the issue's acceptance test. The full
// trace is tens of megabytes, so the golden file pins its SHA-256
// digest instead of the bytes (regenerate with -update after an
// intentional format change); the test additionally validates the
// trace structurally: valid Chrome trace-event JSON, well-paired flow
// events, in-range timestamps, and presence of the CS protocol events
// (setup/ack/teardown) and slot steals.
func TestGoldenPerfettoTrace(t *testing.T) {
	s := goldenSim(t)
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if rec := s.Telemetry(); rec.Dropped() != 0 {
		t.Fatalf("golden scenario dropped %d events — raise the ring capacity", rec.Dropped())
	}

	digest := fmt.Sprintf("%x %d\n", sha256.Sum256(buf.Bytes()), buf.Len())
	golden := filepath.Join("testdata", "golden-trace.sha256")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(digest), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden digest (regenerate with `go test ./hsnoc -run Golden -update`): %v", err)
	}
	if string(want) != digest {
		t.Errorf("trace digest changed:\n got %swant %s(intentional format changes: regenerate with -update)", digest, want)
	}

	var tf struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Name string `json:"name"`
			ID   string `json:"id"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.OtherData["mode"] != "Hybrid-TDM" || tf.OtherData["mesh"] != "4x4" || tf.OtherData["ring_drops"] != "0" {
		t.Errorf("otherData = %v", tf.OtherData)
	}

	maxTS := int64(4500) // warmup + run
	counts := map[string]int{}
	flow := map[string]int{} // id -> 0 unseen, 1 started, 2 finished
	for _, e := range tf.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "s":
			if flow[e.ID] != 0 {
				t.Fatalf("duplicate flow start for %s", e.ID)
			}
			flow[e.ID] = 1
		case "t", "f":
			if flow[e.ID] != 1 {
				t.Fatalf("flow %q for %s in state %d", e.Ph, e.ID, flow[e.ID])
			}
			if e.Ph == "f" {
				flow[e.ID] = 2
			}
		}
		counts[e.Name]++
		if e.Ts < 0 || e.Ts > maxTS {
			t.Fatalf("event %s at ts %d outside [0, %d]", e.Name, e.Ts, maxTS)
		}
	}
	for _, name := range []string{"cs-setup", "cs-ack", "cs-teardown", "slot-steal", "cs-bypass", "inject", "eject", "lt"} {
		if counts[name] == 0 {
			t.Errorf("trace contains no %q events", name)
		}
	}
}

// TestTelemetryRestrictions: the attach preconditions fail loudly, and
// parallel executors are accepted (one recorder shard per worker).
func TestTelemetryRestrictions(t *testing.T) {
	sdm := DefaultConfig(4, 4)
	sdm.Mode = HybridSDM
	s := NewSynthetic(sdm, Tornado, 0.05)
	defer s.Close()
	if _, err := s.AttachTelemetry(TelemetryOptions{}); err == nil {
		t.Error("telemetry attached to an sdm simulator")
	}

	par := DefaultConfig(4, 4)
	par.Mode = HybridTDM
	par.Workers = 2
	p := NewSynthetic(par, Tornado, 0.05)
	defer p.Close()
	rec, err := p.AttachTelemetry(TelemetryOptions{})
	if err != nil {
		t.Fatalf("telemetry refused with Workers = 2: %v", err)
	}
	if rec.Shards() < 2 {
		t.Errorf("parallel recorder has %d shards, want >= 2", rec.Shards())
	}
	p.Warmup(100)
	p.Run(200)
	if rec.Events() == 0 {
		t.Error("parallel traced run recorded no events")
	}

	ok := DefaultConfig(4, 4)
	ok.Mode = HybridTDM
	q := NewSynthetic(ok, Tornado, 0.05)
	defer q.Close()
	if _, err := q.AttachTelemetry(TelemetryOptions{}); err != nil {
		t.Fatalf("first attach failed: %v", err)
	}
	if _, err := q.AttachTelemetry(TelemetryOptions{}); err == nil {
		t.Error("second attach accepted")
	}
}

// TestTracedSteadyStateAllocFree pins the enabled-path allocation
// guarantee end to end: with a recorder attached and the simulation in
// steady state, stepping the network performs zero heap allocations per
// window even as events stream into the ring.
func TestTracedSteadyStateAllocFree(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.Mode = HybridTDM
	cfg.Seed = 1
	s := NewSynthetic(cfg, Tornado, 0.15)
	defer s.Close()
	// A small ring that wraps during the measurement: steady state must
	// be allocation-free in the drop-oldest regime too.
	if _, err := s.AttachTelemetry(TelemetryOptions{Every: 64, RingCapacity: 1 << 12, MaxSamples: 64}); err != nil {
		t.Fatalf("AttachTelemetry: %v", err)
	}
	s.Warmup(2000)
	if a := testing.AllocsPerRun(20, func() { s.net.Run(64) }); a != 0 {
		t.Errorf("traced steady-state window allocates %.1f per 64 cycles, want 0", a)
	}
}

// TestTelemetrySummaryDeterministic: two identical traced runs produce
// byte-identical summaries (the property campaign stores rely on).
func TestTelemetrySummaryDeterministic(t *testing.T) {
	run := func() []byte {
		cfg := DefaultConfig(4, 4)
		cfg.Mode = HybridTDM
		cfg.Seed = 7
		s := NewSynthetic(cfg, Tornado, 0.12)
		defer s.Close()
		rec, err := s.AttachTelemetry(TelemetryOptions{Every: 64})
		if err != nil {
			t.Fatalf("AttachTelemetry: %v", err)
		}
		s.Warmup(500)
		s.Run(2000)
		b, err := json.Marshal(rec.Summary())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Error("telemetry summaries differ between identical runs")
	}
}
