package hsnoc

import (
	"fmt"
	"strings"

	"tdmnoc/internal/invariant"
	"tdmnoc/internal/network"
)

// Violation is one runtime invariant violation detected with
// Config.CheckInvariants enabled: the cycle it was detected at, the
// router it concerns (-1 for network-wide invariants such as flit
// conservation), the invariant kind ("conservation", "credit",
// "slot-table") and a human-readable detail with enough context to
// reproduce the failure.
type Violation struct {
	Cycle  int64  `json:"cycle"`
	Router int    `json:"router"`
	Kind   string `json:"kind"`
	Detail string `json:"detail"`
}

// String formats the violation for logs.
func (v Violation) String() string {
	return invariant.Violation(v).String()
}

// ViolationError reports that a checked run detected invariant
// violations. Count is the total detected; Violations holds the first
// stored ones (the storage is capped — a single broken invariant
// re-fires every checked cycle).
type ViolationError struct {
	Count      int64
	Violations []Violation
}

// Error summarises the violations, leading with the first (the one
// closest to the root cause).
func (e *ViolationError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hsnoc: %d invariant violation(s)", e.Count)
	if len(e.Violations) > 0 {
		fmt.Fprintf(&b, "; first: %s", e.Violations[0])
	}
	return b.String()
}

// violationsFrom converts the network checker's findings.
func violationsFrom(net *network.Network) []Violation {
	vs := net.InvariantViolations()
	if len(vs) == 0 {
		return nil
	}
	out := make([]Violation, len(vs))
	for i, v := range vs {
		out[i] = Violation(v)
	}
	return out
}

// StateDigest hashes the simulator's complete mutable state (router
// pipelines, NI queues, slot tables, clock) into one 64-bit FNV-1a
// value. Two runs of the same seeded config must produce equal digests
// at equal cycles regardless of Workers; the first differing cycle
// pinpoints a determinism bug. Returns 0 for HybridSDM (no digest
// support).
func (s *Simulator) StateDigest() uint64 {
	if s.net == nil {
		return 0
	}
	return s.net.StateDigest()
}

// RollingDigest returns the FNV-1a digest folded over every checked
// cycle (0 unless Config.CheckInvariants is set).
func (s *Simulator) RollingDigest() uint64 {
	if s.net == nil {
		return 0
	}
	return s.net.RollingDigest()
}

// InvariantViolations returns the violations detected so far (nil when
// checking is disabled or the run is clean).
func (s *Simulator) InvariantViolations() []Violation {
	if s.net == nil {
		return nil
	}
	return violationsFrom(s.net)
}

// InvariantViolationCount returns the total violations detected,
// including ones beyond the storage cap.
func (s *Simulator) InvariantViolationCount() int64 {
	if s.net == nil {
		return 0
	}
	return s.net.InvariantCount()
}

// InvariantError returns a *ViolationError when the run detected
// violations, nil otherwise.
func (s *Simulator) InvariantError() error {
	if s.net == nil || s.net.InvariantCount() == 0 {
		return nil
	}
	return &ViolationError{Count: s.net.InvariantCount(), Violations: violationsFrom(s.net)}
}

// InvariantViolations returns the violations detected in the
// heterogeneous system's network (nil when checking is disabled or the
// run is clean).
func (h *HeteroSimulator) InvariantViolations() []Violation {
	return violationsFrom(h.sys.Net)
}

// InvariantViolationCount returns the total violations detected.
func (h *HeteroSimulator) InvariantViolationCount() int64 {
	return h.sys.Net.InvariantCount()
}
