package hsnoc

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// profiledScenario is the profile-extraction worker-matrix scenario:
// tornado on a 4x4 hybrid-TDM mesh with flow tracking attached.
func profiledScenario(workers int) Config {
	cfg := DefaultConfig(4, 4)
	cfg.Mode = HybridTDM
	cfg.Seed = 11
	cfg.Workers = workers
	return cfg
}

// profiledRun executes the scenario and returns the extracted profile's
// stable JSON bytes.
func profiledRun(t *testing.T, workers int) []byte {
	t.Helper()
	s := NewSynthetic(profiledScenario(workers), Tornado, 0.15)
	defer s.Close()
	if _, err := s.AttachTelemetry(TelemetryOptions{Every: 64, RingCapacity: 1 << 17, TrackFlows: true}); err != nil {
		t.Fatalf("AttachTelemetry(workers=%d): %v", workers, err)
	}
	s.Warmup(300)
	s.Run(1200)
	p, err := s.ExtractProfile()
	if err != nil {
		t.Fatalf("ExtractProfile(workers=%d): %v", workers, err)
	}
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestProfileGoldenWorkerInvariant pins the profile's stable-JSON
// contract twice over: the encoded profile is byte-identical at Workers
// 1, 4 and 8 (sharded flow tracking merges deterministically), and it
// matches the committed golden file (regenerate with
// `go test ./hsnoc -run ProfileGolden -update` after an intentional
// schema or simulation change).
func TestProfileGoldenWorkerInvariant(t *testing.T) {
	serial := profiledRun(t, 1)
	for _, w := range []int{4, 8} {
		if b := profiledRun(t, w); !bytes.Equal(serial, b) {
			t.Errorf("profile JSON differs between Workers=1 (%d bytes) and Workers=%d (%d bytes)",
				len(serial), w, len(b))
		}
	}

	golden := filepath.Join("testdata", "golden-profile.json")
	if *updateGolden {
		if err := os.WriteFile(golden, serial, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden profile (regenerate with -update): %v", err)
	}
	if !bytes.Equal(want, serial) {
		t.Errorf("profile JSON changed vs golden (%d vs %d bytes); intentional changes: regenerate with -update",
			len(serial), len(want))
	}

	// The golden bytes round-trip through the reader unchanged.
	p, err := ReadProfileFile(golden)
	if err != nil {
		t.Fatalf("ReadProfileFile(golden): %v", err)
	}
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, want) {
		t.Error("golden profile decode→encode not byte-identical")
	}
}

// decisionDigest applies d to the profiled scenario's config and runs
// it with invariant checking, returning the rolling state digest.
func decisionDigest(t *testing.T, d Decision, workers int) uint64 {
	t.Helper()
	cfg := profiledScenario(workers)
	cfg.CheckInvariants = true
	cfg.CheckInterval = 64
	cfg2, err := ApplyDecision(cfg, d)
	if err != nil {
		t.Fatalf("ApplyDecision: %v", err)
	}
	if err := cfg2.Validate(); err != nil {
		t.Fatalf("decision produced invalid config: %v", err)
	}
	s := NewSynthetic(cfg2, Tornado, 0.15)
	defer s.Close()
	s.Warmup(300)
	s.Run(1200)
	if err := s.InvariantError(); err != nil {
		t.Fatalf("invariant violations under decision %q: %v", d.Policy, err)
	}
	return s.RollingDigest()
}

// TestDecisionReapplyDigestIdentical is the offline loop's
// reproducibility acceptance: deriving a Decision from a profile and
// applying it twice yields bit-identical state digests — across worker
// counts too, since the decision is plain config.
func TestDecisionReapplyDigestIdentical(t *testing.T) {
	s := NewSynthetic(profiledScenario(1), Tornado, 0.15)
	if _, err := s.AttachTelemetry(TelemetryOptions{Every: 64, RingCapacity: 1 << 17, TrackFlows: true}); err != nil {
		t.Fatalf("AttachTelemetry: %v", err)
	}
	s.Warmup(300)
	s.Run(1200)
	prof, err := s.ExtractProfile()
	if err != nil {
		t.Fatalf("ExtractProfile: %v", err)
	}
	s.Close()

	pol, err := ParsePolicy("greedy")
	if err != nil {
		t.Fatal(err)
	}
	d := pol.Decide(prof)
	if len(d.PinnedFlows) == 0 {
		t.Fatal("greedy pinned no flows on tornado — nothing to reproduce")
	}

	first := decisionDigest(t, d, 1)
	if first == 0 {
		t.Fatal("digest is zero — invariant checking not active")
	}
	if again := decisionDigest(t, d, 1); again != first {
		t.Errorf("re-applying the same decision changed the digest: %#x vs %#x", again, first)
	}
	if par := decisionDigest(t, d, 8); par != first {
		t.Errorf("decision digest at Workers=8 = %#x, serial = %#x", par, first)
	}
}

// TestApplyDecisionValidation: the application layer rejects decisions
// that do not fit the config they are applied to.
func TestApplyDecisionValidation(t *testing.T) {
	cfg := profiledScenario(1)
	if _, err := ApplyDecision(cfg, Decision{PinnedFlows: []FlowPin{{Src: 0, Dst: 99}}}); err == nil {
		t.Error("out-of-mesh pin accepted")
	}
	if _, err := ApplyDecision(cfg, Decision{SlotInit: 4096}); err == nil {
		t.Error("oversized slot_init accepted")
	}
	if _, err := ApplyDecision(cfg, Decision{UseSDM: true, GatedPlanes: 3}); err == nil {
		t.Error("gating 3 of 4 planes accepted")
	}
	pkt := cfg
	pkt.Mode = PacketSwitched
	if _, err := ApplyDecision(pkt, Decision{Policy: "greedy", RestrictSetups: true}); err == nil {
		t.Error("TDM decision on packet-switched base accepted")
	}
	// SDM gating clears TDM-only knobs rather than failing validation.
	tdm := cfg
	tdm.SlotInit, tdm.RestrictSetups = 32, true
	got, err := ApplyDecision(tdm, Decision{Policy: "sdm-gate", UseSDM: true, GatedPlanes: 2})
	if err != nil {
		t.Fatalf("SDM decision on TDM base: %v", err)
	}
	if got.Mode != HybridSDM || got.GatedPlanes != 2 || got.SlotInit != 0 || got.RestrictSetups {
		t.Errorf("SDM application left TDM residue: %+v", got)
	}
	if err := got.Validate(); err != nil {
		t.Errorf("SDM-gated config invalid: %v", err)
	}
}

// TestAdaptiveControllerParallelDeterminism drives the online in-sim
// controller (epoch re-pinning) and asserts the three contracts at
// once: it actually re-pins, it never breaks slot-table ownership
// invariants, and its state digest is identical serial vs Workers=8.
func TestAdaptiveControllerParallelDeterminism(t *testing.T) {
	run := func(workers int) (uint64, int) {
		cfg := profiledScenario(workers)
		cfg.CheckInvariants = true
		cfg.CheckInterval = 64
		cfg.AdaptiveEpoch = 256
		cfg.AdaptiveTopK = 8
		s := NewSynthetic(cfg, Tornado, 0.15)
		defer s.Close()
		if _, err := s.AttachTelemetry(TelemetryOptions{Every: 64, RingCapacity: 1 << 17, TrackFlows: true}); err != nil {
			t.Fatalf("AttachTelemetry(workers=%d): %v", workers, err)
		}
		s.Warmup(300)
		s.Run(1200)
		if err := s.InvariantError(); err != nil {
			t.Fatalf("workers=%d: adaptive run violated invariants: %v", workers, err)
		}
		return s.RollingDigest(), s.AdaptiveRepins()
	}
	serialDigest, serialRepins := run(1)
	if serialRepins == 0 {
		t.Fatal("controller performed no epoch re-pins — scenario too short?")
	}
	if serialDigest == 0 {
		t.Fatal("digest is zero — invariant checking not active")
	}
	parDigest, parRepins := run(8)
	if parDigest != serialDigest {
		t.Errorf("adaptive digest at Workers=8 = %#x, serial = %#x", parDigest, serialDigest)
	}
	if parRepins != serialRepins {
		t.Errorf("re-pin count differs: serial %d, Workers=8 %d", serialRepins, parRepins)
	}
}
