// Package hsnoc is the public API of the TDM hybrid-switched NoC
// simulator — a from-scratch Go reproduction of "Energy-Efficient
// Time-Division Multiplexed Hybrid-Switched NoC for Heterogeneous
// Multicore Systems" (Yin, Zhou, Sapatnekar, Zhai; IPDPS 2014).
//
// The package wraps the cycle-accurate engine (internal/router,
// internal/network and friends) behind a small configuration surface:
//
//	cfg := hsnoc.DefaultConfig(6, 6)
//	cfg.Mode = hsnoc.HybridTDM
//	sim := hsnoc.NewSynthetic(cfg, hsnoc.Tornado, 0.15)
//	defer sim.Close()
//	sim.Warmup(5_000)
//	res := sim.Run(50_000)
//	fmt.Println(res.AvgNetLatency, res.EnergySavingVs(baseline))
//
// Three switching modes are available: the canonical packet-switched
// baseline (Packet-VC4 in the paper), the TDM hybrid-switched network
// that is the paper's contribution, and the SDM hybrid baseline of Jerger
// et al. used in the Fig. 4 comparison.
package hsnoc

import (
	"context"
	"fmt"
	"io"

	"tdmnoc/internal/network"
	"tdmnoc/internal/obs"
	"tdmnoc/internal/policy"
	"tdmnoc/internal/power"
	"tdmnoc/internal/router"
	"tdmnoc/internal/sdm"
	"tdmnoc/internal/sim"
	"tdmnoc/internal/topology"
	"tdmnoc/internal/traffic"
)

// Mode selects the switching architecture.
type Mode int

const (
	// PacketSwitched is the Packet-VC4 baseline: a canonical 4-stage
	// virtual-channelled wormhole router network.
	PacketSwitched Mode = iota
	// HybridTDM is the paper's contribution: packet- and circuit-switched
	// traffic share the fabric through per-input-port slot tables.
	HybridTDM
	// HybridSDM is the space-division-multiplexed baseline: links are
	// physically partitioned into planes owned by circuits.
	HybridSDM
)

// String names the mode as the paper's figures label it.
func (m Mode) String() string {
	switch m {
	case PacketSwitched:
		return "Packet-VC4"
	case HybridTDM:
		return "Hybrid-TDM"
	case HybridSDM:
		return "Hybrid-SDM"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Pattern is a synthetic traffic pattern (Section IV).
type Pattern = traffic.Pattern

// The synthetic patterns of Section IV plus two extras used by ablations.
const (
	UniformRandom = traffic.UniformRandom
	Tornado       = traffic.Tornado
	Transpose     = traffic.Transpose
	BitComplement = traffic.BitComplement
	Neighbor      = traffic.Neighbor
	Hotspot       = traffic.Hotspot
)

// Config selects and sizes a simulated network. Zero values fall back to
// the Table-I parameters.
type Config struct {
	// Width and Height of the mesh (Table I: 6x6).
	Width, Height int
	// Mode is the switching architecture.
	Mode Mode
	// VCs per port (Table I: 4) and buffer depth per VC (Table I: 5).
	VCs, BufferDepth int
	// SlotTableEntries is the physical slot-table capacity (Table I: 128;
	// the paper uses 256 for 256-node meshes).
	SlotTableEntries int
	// TimeSlotStealing lets packet-switched flits borrow idle reserved
	// slots (Section II-D). Enabled by default for HybridTDM.
	DisableTimeSlotStealing bool
	// PathSharing enables hitchhiker- and vicinity-sharing
	// (Section III-A) — the paper's "hop" configurations.
	PathSharing bool
	// VCPowerGating enables aggressive VC power gating (Section III-B) —
	// the paper's "VCt" configurations.
	VCPowerGating bool
	// LatencyBasedVCGating swaps the utilisation-driven gate for the
	// buffer-residency-driven refinement the paper suggests in
	// Section V-B4 (implies VCPowerGating).
	LatencyBasedVCGating bool
	// DisableDynamicSlotSizing pins the active slot-table region to the
	// full capacity instead of growing it on demand (Section II-C).
	DisableDynamicSlotSizing bool
	// SAIterations sets the switch allocator's iSLIP iteration count
	// (0/1 = the classic single-pass separable allocator).
	SAIterations int
	// Planes is the SDM link partition count (HybridSDM only; default 4).
	Planes int
	// Seed makes runs reproducible; equal seeds give identical results.
	Seed uint64
	// Workers sets executor parallelism (results are identical for any
	// value; >1 only pays off on large meshes).
	Workers int
	// Partition selects the worker tile-partitioning and memory-layout
	// strategy: "" or "block" for spatially contiguous 2D blocks per
	// worker (the cache-local default), "stride" for the historical
	// row-major chunking (kept for A/B benchmarks). Never changes
	// results — only locality and trace shard ownership.
	Partition string
	// InjectRingCap pre-sizes each NI's injection ring to this many
	// packet slots (0 = a small lazy default that grows by doubling).
	// Ring capacity never changes results; callers who know the run
	// window use it to keep over-saturated large-mesh runs
	// allocation-free (the backlog ring is otherwise the one remaining
	// steady-state allocation source).
	InjectRingCap int
	// CheckInvariants enables the runtime invariant layer: per-cycle (or
	// per-CheckInterval) verification of flit conservation, credit
	// consistency and slot-table ownership, plus a rolling FNV-1a state
	// digest for serial-vs-parallel equivalence checking. Expect roughly
	// 2-4x slowdown when checking every cycle; it never changes
	// simulation results. Not available for HybridSDM.
	CheckInvariants bool
	// CheckInterval is the checking cadence in cycles (<= 1 = every
	// cycle). Larger intervals cut the overhead proportionally but
	// detect a divergence or violation only at the next checked cycle.
	CheckInterval int

	// The policy layer (see internal/policy and ApplyDecision): knobs a
	// profile-derived Decision applies through plain configuration so
	// re-runs stay digest-reproducible. All zero values mean "no policy".

	// DLTEntries overrides the destination-lookup-table size used by
	// path sharing (0 = the router default of 8).
	DLTEntries int
	// SlotInit, when > 0, starts the dynamic slot-table resizer at this
	// active-region size instead of capacity/8 (HybridTDM with dynamic
	// sizing only). Profiled runs use it to skip the discovery
	// doublings — or to hold the table deliberately small.
	SlotInit int
	// PinnedFlows lists (src, dst) node pairs pinned to circuit
	// switching: the source sets their circuits up eagerly on first
	// send, skipping the frequency filter.
	PinnedFlows []FlowPin
	// RestrictSetups forbids circuit setups for flows not in
	// PinnedFlows; non-pinned traffic stays packet-switched.
	RestrictSetups bool
	// GatedPlanes power-gates that many SDM link planes (HybridSDM
	// only; at least 2 planes must stay on).
	GatedPlanes int
	// AdaptiveEpoch, when > 0, enables the online in-sim controller:
	// every AdaptiveEpoch cycles the network re-ranks flows from the
	// recorder's windowed flow series and re-pins the top AdaptiveTopK
	// (default 8), re-allocating slot tables when the set changed.
	// HybridTDM only; telemetry (with flow tracking) is attached
	// automatically if the caller has not attached its own.
	AdaptiveEpoch int64
	AdaptiveTopK  int
}

// FlowPin names one (src, dst) flow pinned to circuit switching.
type FlowPin = policy.FlowPin

// DefaultConfig returns the Table-I baseline configuration for a
// width x height mesh.
func DefaultConfig(width, height int) Config {
	return Config{Width: width, Height: height, VCs: 4, BufferDepth: 5, SlotTableEntries: 128, Planes: 4, Seed: 1, Workers: 1}
}

// networkConfig lowers the public Config onto the engine configuration.
func (c Config) networkConfig() network.Config {
	nc := network.DefaultConfig(c.Width, c.Height)
	nc.Seed = c.Seed
	if c.Workers > 0 {
		nc.Workers = c.Workers
	}
	nc.Partition = c.Partition
	nc.InjectRingCap = c.InjectRingCap
	if c.VCs > 0 {
		nc.Router.VCs = c.VCs
	}
	if c.BufferDepth > 0 {
		nc.Router.BufDepth = c.BufferDepth
	}
	if c.SAIterations > 0 {
		nc.Router.SAIterations = c.SAIterations
	}
	if c.Mode == HybridTDM {
		nc.Router.Hybrid = true
		nc.HybridSwitching = true
		nc.DynamicSlots = !c.DisableDynamicSlotSizing
		if c.SlotTableEntries > 0 {
			nc.Router.SlotCapacity = c.SlotTableEntries
			nc.Router.SlotActive = c.SlotTableEntries
		}
		nc.Router.TimeSlotStealing = !c.DisableTimeSlotStealing
		if c.PathSharing {
			nc = nc.WithSharing()
		}
		if c.DLTEntries > 0 {
			nc.Router.DLTEntries = c.DLTEntries
		}
		nc.SlotInit = c.SlotInit
		if len(c.PinnedFlows) > 0 {
			nc.PinnedFlows = make([]network.PinnedFlow, len(c.PinnedFlows))
			for i, p := range c.PinnedFlows {
				nc.PinnedFlows[i] = network.PinnedFlow{Src: p.Src, Dst: p.Dst}
			}
		}
		nc.RestrictSetups = c.RestrictSetups
		nc.AdaptiveEpoch = c.AdaptiveEpoch
		nc.AdaptiveTopK = c.AdaptiveTopK
	}
	if c.VCPowerGating {
		nc = nc.WithVCGating()
	}
	if c.LatencyBasedVCGating {
		nc = nc.WithLatencyVCGating()
	}
	nc.CheckInvariants = c.CheckInvariants
	nc.CheckInterval = c.CheckInterval
	// Every endpoint this layer attaches (synthetic generators, the
	// hetero tile models, trace replayers) drops packet references when
	// OnDeliver returns, so message recycling is always safe here.
	nc.PoolMessages = true
	return nc
}

// sdmConfig lowers the public Config onto the SDM engine.
func (c Config) sdmConfig() sdm.Config {
	sc := sdm.DefaultConfig(c.Width, c.Height)
	sc.Seed = c.Seed
	if c.VCs > 0 {
		sc.VCs = c.VCs
	}
	if c.BufferDepth > 0 {
		sc.BufDepth = c.BufferDepth
	}
	if c.Planes > 0 {
		sc.Planes = c.Planes
		sc.CircuitPlanes = c.Planes - 1
	}
	sc.GatedPlanes = c.GatedPlanes
	return sc
}

// Results summarises one measured region.
type Results struct {
	// Cycles is the measured-region length.
	Cycles int64
	// Packets delivered during measurement.
	Packets int64
	// AvgNetLatency is mean injection-to-ejection latency (cycles).
	AvgNetLatency float64
	// AvgTotalLatency includes source queueing and circuit-slot stalls.
	AvgTotalLatency float64
	// Throughput is accepted flits/node/cycle.
	Throughput float64
	// PayloadThroughput normalises packets to packet-switched flit
	// equivalents (a circuit-switched packet carries a cache line in 4
	// flits instead of 5).
	PayloadThroughput float64
	// CSFlitFraction is the share of data flits that rode circuits.
	CSFlitFraction float64
	// ConfigTrafficFraction is setup/teardown/ack flits over all flits.
	ConfigTrafficFraction float64
	// Hitchhikes and VicinityRides count path-sharing uses.
	Hitchhikes, VicinityRides int64
	// CircuitsEstablished counts successful path setups.
	CircuitsEstablished int64
	// ActiveSlotEntries is the slot-table region in use at the end
	// (dynamic sizing).
	ActiveSlotEntries int
	// Energy is the network energy breakdown for the measured region.
	Energy Energy
}

// Energy is the per-component energy of Fig. 9, in picojoules.
type Energy struct {
	DynamicPJ map[string]float64
	StaticPJ  map[string]float64
	TotalPJ   float64
}

func energyFrom(b power.Breakdown) Energy {
	e := Energy{DynamicPJ: map[string]float64{}, StaticPJ: map[string]float64{}}
	for c := power.Component(0); c < power.NumComponents; c++ {
		e.DynamicPJ[c.String()] = b.DynamicPJ[c]
		e.StaticPJ[c.String()] = b.StaticPJ[c]
	}
	e.TotalPJ = b.TotalPJ()
	return e
}

// EnergySavingVs returns the fractional energy saving of r relative to a
// baseline run (positive = r uses less energy). Both sides are
// normalised to energy per measured cycle, so records of different
// lengths (e.g. a run that stopped at a packet target vs a full-length
// baseline) compare meaningfully. Returns 0 when either record has no
// measured cycles or the baseline recorded no energy.
func (r Results) EnergySavingVs(baseline Results) float64 {
	if r.Cycles == 0 || baseline.Cycles == 0 || baseline.Energy.TotalPJ == 0 {
		return 0
	}
	perCycle := r.Energy.TotalPJ / float64(r.Cycles)
	basePerCycle := baseline.Energy.TotalPJ / float64(baseline.Cycles)
	return 1 - perCycle/basePerCycle
}

// Simulator drives synthetic traffic over one network instance.
type Simulator struct {
	cfg  Config
	mode Mode

	net  *network.Network
	gens []*traffic.Synthetic

	sdmNet *sdm.Network

	// rec is the attached observability recorder (nil = telemetry off);
	// recEvery is its sampling interval. See telemetry.go.
	rec      *obs.Recorder
	recEvery int

	measured int64
}

// NewSynthetic builds a simulator offering the given pattern at the given
// injection rate (flits/node/cycle). All traffic is circuit-switching
// eligible, matching the Section IV evaluation.
func NewSynthetic(cfg Config, pattern Pattern, rate float64) *Simulator {
	s := &Simulator{cfg: cfg, mode: cfg.Mode}
	if cfg.Mode == HybridSDM {
		sc := s.cfg.sdmConfig()
		mesh := topology.NewMesh(cfg.Width, cfg.Height)
		s.sdmNet = sdm.New(sc, func(now int64, src topology.NodeID, rng *sim.RNG) (topology.NodeID, bool) {
			if !rng.Bernoulli(rate / float64(sc.PSDataFlits)) {
				return 0, false
			}
			return traffic.Destination(pattern, mesh, src, rng)
		})
		return s
	}
	nc := cfg.networkConfig()
	allowCS := cfg.Mode == HybridTDM
	s.net = network.New(nc, func(id topology.NodeID) network.Endpoint {
		g := traffic.NewSynthetic(pattern, rate, nc.PSDataFlits, allowCS)
		s.gens = append(s.gens, g)
		return g
	})
	return s
}

// Close releases simulator resources.
func (s *Simulator) Close() {
	if s.net != nil {
		s.net.Close()
	}
}

// StopTraffic halts the synthetic generators; combine with Drain to let
// every in-flight packet land before reading final statistics.
func (s *Simulator) StopTraffic() {
	for _, g := range s.gens {
		g.Stop()
	}
	if s.sdmNet != nil {
		s.sdmNet.StopGeneration()
	}
}

// Drain runs until every sent packet has been delivered or limit cycles
// pass, reporting success. Call StopTraffic first.
func (s *Simulator) Drain(limit int) bool {
	if s.sdmNet != nil {
		return s.sdmNet.Drain(limit)
	}
	return s.net.Drain(limit)
}

// ensureAdaptiveTelemetry attaches the recorder the online controller
// feeds on when AdaptiveEpoch is set and the caller has not attached
// telemetry of their own. Called lazily at the first Warmup/Run so an
// explicit AttachTelemetry (e.g. the campaign runner's) wins — it
// force-enables flow tracking itself when the controller is on.
func (s *Simulator) ensureAdaptiveTelemetry() {
	if s.net == nil || s.cfg.AdaptiveEpoch <= 0 || s.rec != nil {
		return
	}
	_, err := s.AttachTelemetry(TelemetryOptions{
		// Windows aligned to controller epochs; the event timeline is
		// heavily decimated — the controller reads aggregate flow
		// counters, not the ring.
		Every:        int(s.cfg.AdaptiveEpoch),
		RingCapacity: 1 << 12,
		RingSample:   1 << 10,
		KindMask:     obs.ProfileFlows,
		TrackFlows:   true,
	})
	if err != nil {
		panic(fmt.Sprintf("hsnoc: adaptive telemetry attach: %v", err))
	}
}

// Warmup advances the simulation without measuring (the paper warms the
// network with 1000 packets before measurement).
func (s *Simulator) Warmup(cycles int) {
	if s.sdmNet != nil {
		s.sdmNet.Run(cycles)
		return
	}
	s.ensureAdaptiveTelemetry()
	s.net.Run(cycles)
}

// Run measures the next region of the given length and returns its
// results.
func (s *Simulator) Run(cycles int) Results {
	if s.sdmNet != nil {
		s.sdmNet.EnableStats()
		s.sdmNet.Run(cycles)
		return s.collectSDM(int64(cycles))
	}
	s.ensureAdaptiveTelemetry()
	s.net.EnableStats()
	s.net.Run(cycles)
	s.measured += int64(cycles)
	return s.collect(int64(cycles))
}

// runChunk is the cycle-granularity at which context cancellation and
// packet targets are checked: coarse enough that the check is free,
// fine enough that a cancelled campaign job aborts within microseconds.
const runChunk = 1024

// RunContext measures like Run but advances in chunks, aborting early
// (discarding the partial region) when ctx is cancelled. It is the
// measurement entry point of the campaign engine, whose jobs carry
// per-job timeouts.
func (s *Simulator) RunContext(ctx context.Context, cycles int) (Results, error) {
	step := func(n int) {
		if s.sdmNet != nil {
			s.sdmNet.Run(n)
		} else {
			s.net.Run(n)
		}
	}
	if s.sdmNet != nil {
		s.sdmNet.EnableStats()
	} else {
		s.ensureAdaptiveTelemetry()
		s.net.EnableStats()
	}
	for done := 0; done < cycles; {
		if err := ctx.Err(); err != nil {
			return Results{}, err
		}
		n := min(runChunk, cycles-done)
		step(n)
		done += n
	}
	if s.sdmNet != nil {
		return s.collectSDM(int64(cycles)), nil
	}
	s.measured += int64(cycles)
	return s.collect(int64(cycles)), nil
}

// WarmupContext advances like Warmup but aborts when ctx is cancelled.
func (s *Simulator) WarmupContext(ctx context.Context, cycles int) error {
	for done := 0; done < cycles; {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := min(runChunk, cycles-done)
		s.Warmup(n)
		done += n
	}
	return nil
}

// RunUntilPackets measures until target data packets have been ejected
// or limit cycles elapse, whichever comes first, and returns results
// over the cycles actually simulated. A zero-rate generator never
// reaches a positive target; callers should validate that combination
// up front (cmd/nocsim does).
func (s *Simulator) RunUntilPackets(target int64, limit int) Results {
	delivered := func() int64 {
		if s.sdmNet != nil {
			return s.sdmNet.Stats.EjectedPackets
		}
		return s.net.Stats().EjectedPackets
	}
	if s.sdmNet != nil {
		s.sdmNet.EnableStats()
	} else {
		s.ensureAdaptiveTelemetry()
		s.net.EnableStats()
	}
	run := 0
	for run < limit && delivered() < target {
		n := min(runChunk, limit-run)
		if s.sdmNet != nil {
			s.sdmNet.Run(n)
		} else {
			s.net.Run(n)
		}
		run += n
	}
	if s.sdmNet != nil {
		return s.collectSDM(int64(run))
	}
	s.measured += int64(run)
	return s.collect(int64(run))
}

func (s *Simulator) collect(cycles int64) Results {
	st := s.net.Stats()
	nodes := s.net.Mesh().Nodes()
	res := Results{
		Cycles:                cycles,
		Packets:               st.EjectedPackets,
		Throughput:            st.Throughput(nodes, cycles),
		PayloadThroughput:     st.PayloadThroughput(s.net.Config().PSDataFlits, nodes, cycles),
		CSFlitFraction:        st.CSFlitFraction(),
		ConfigTrafficFraction: st.ConfigTrafficFraction(),
		Hitchhikes:            st.Hitchhikes,
		VicinityRides:         st.VicinityRides,
		CircuitsEstablished:   st.SetupsOK,
		ActiveSlotEntries:     s.net.ActiveSlots(),
		Energy:                energyFrom(s.net.Energy()),
	}
	res.AvgNetLatency, _ = st.AvgNetLatency()
	res.AvgTotalLatency, _ = st.AvgTotalLatency()
	return res
}

func (s *Simulator) collectSDM(cycles int64) Results {
	st := &s.sdmNet.Stats
	nodes := s.sdmNet.Mesh().Nodes()
	res := Results{
		Cycles:              cycles,
		Packets:             st.EjectedPackets,
		Throughput:          st.Throughput(nodes, cycles),
		PayloadThroughput:   st.PayloadThroughput(5, nodes, cycles),
		CSFlitFraction:      st.CSFlitFraction(),
		CircuitsEstablished: st.SetupsOK,
		Energy:              energyFrom(s.sdmNet.Energy(power.Default45nm())),
	}
	res.AvgNetLatency, _ = st.AvgNetLatency()
	res.AvgTotalLatency, _ = st.AvgTotalLatency()
	return res
}

// Diagnostics reports protocol-invariant violations (all zero in correct
// runs) plus the stolen-slot count. Not available for HybridSDM.
type Diagnostics struct {
	MisroutedCS, DroppedCS, LatchConflicts, StolenSlots int64
}

// TraceEvents streams router-level debug events (buffer writes, crossbar
// traversals, circuit bypasses, slot reservations, steals) as text lines
// to w. Requires a serial executor (Workers <= 1) and is not available
// for HybridSDM.
func (s *Simulator) TraceEvents(w io.Writer) error {
	if s.net == nil {
		return fmt.Errorf("hsnoc: event tracing is not available for %v", s.mode)
	}
	if s.cfg.Workers > 1 {
		return fmt.Errorf("hsnoc: event tracing requires Workers <= 1")
	}
	s.net.AttachEventSink(router.WriteEvents(w))
	return nil
}

// UtilizationGrid returns per-router activity (fraction of cycles doing
// work) as a Height x Width grid — the raw material for a utilisation
// heatmap. Not available for HybridSDM (returns nil).
func (s *Simulator) UtilizationGrid() [][]float64 {
	if s.net == nil {
		return nil
	}
	s.net.SyncMeters() // include leakage of cycles active-node scheduling skipped
	m := s.net.Mesh()
	grid := make([][]float64, m.Height)
	for y := 0; y < m.Height; y++ {
		grid[y] = make([]float64, m.Width)
		for x := 0; x < m.Width; x++ {
			mt := s.net.Router(m.ID(topology.Coord{X: x, Y: y})).Meter()
			if mt.Cycles > 0 {
				grid[y][x] = float64(mt.ActiveCycles) / float64(mt.Cycles)
			}
		}
	}
	return grid
}

// Diagnose returns the simulator's invariant counters.
func (s *Simulator) Diagnose() Diagnostics {
	if s.net == nil {
		return Diagnostics{}
	}
	d := s.net.Diagnose()
	return Diagnostics{
		MisroutedCS: d.MisroutedCS, DroppedCS: d.DroppedCS,
		LatchConflicts: d.LatchConflicts, StolenSlots: d.StolenSlots,
	}
}

// RouterAreaMM2 reports the modelled router area for this configuration
// (Section IV-A: 0.177 mm^2 packet-switched, 0.188 mm^2 hybrid).
func (c Config) RouterAreaMM2() float64 {
	a := power.DefaultArea45nm()
	vcs, depth := c.VCs, c.BufferDepth
	if vcs == 0 {
		vcs = 4
	}
	if depth == 0 {
		depth = 5
	}
	rc := power.RouterAreaConfig{Ports: 5, VCsPerPort: vcs, BufferDepth: depth}
	if c.Mode == HybridTDM {
		rc.Hybrid = true
		rc.SlotTableEntries = c.SlotTableEntries
		if rc.SlotTableEntries == 0 {
			rc.SlotTableEntries = 128
		}
		rc.DLTEntries = 8
	}
	return power.RouterAreaMM2(a, rc)
}
