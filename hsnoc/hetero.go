package hsnoc

import (
	"fmt"

	"tdmnoc/internal/hetero"
	"tdmnoc/internal/workload"
)

// HeteroSimulator runs the Section V heterogeneous multicore system: one
// CPU benchmark on every CPU tile and one GPU kernel on every accelerator
// tile of the Fig. 7 layout, over the configured NoC.
type HeteroSimulator struct {
	sys    *hetero.System
	warmed bool
}

// CPUBenchmarks lists the available SPEC OMP 2001 characterizations.
func CPUBenchmarks() []string {
	out := make([]string, len(workload.CPUBenchmarks))
	for i, b := range workload.CPUBenchmarks {
		out[i] = b.Name
	}
	return out
}

// GPUBenchmarks lists the available GPU kernel characterizations
// (Table III).
func GPUBenchmarks() []string {
	out := make([]string, len(workload.GPUBenchmarks))
	for i, b := range workload.GPUBenchmarks {
		out[i] = b.Name
	}
	return out
}

// NewHeterogeneous builds the heterogeneous system for a workload mix.
// The mesh uses the Fig. 7 layout when cfg is 6x6 and a proportionally
// scaled layout otherwise. HybridSDM mode is not supported here (the
// paper's Section V evaluates TDM only).
func NewHeterogeneous(cfg Config, cpuBench, gpuBench string) (*HeteroSimulator, error) {
	if cfg.Mode == HybridSDM {
		return nil, fmt.Errorf("hsnoc: heterogeneous evaluation supports PacketSwitched and HybridTDM only")
	}
	cpu, ok := workload.CPUBenchmarkByName(cpuBench)
	if !ok {
		return nil, fmt.Errorf("hsnoc: unknown CPU benchmark %q", cpuBench)
	}
	gpu, ok := workload.GPUBenchmarkByName(gpuBench)
	if !ok {
		return nil, fmt.Errorf("hsnoc: unknown GPU benchmark %q", gpuBench)
	}
	var layout hetero.Layout
	if cfg.Width == 6 && cfg.Height == 6 {
		layout = hetero.Layout36()
	} else {
		layout = hetero.LayoutScaled(cfg.Width, cfg.Height)
	}
	return &HeteroSimulator{sys: hetero.NewSystem(cfg.networkConfig(), layout, cpu, gpu)}, nil
}

// Close releases resources.
func (h *HeteroSimulator) Close() { h.sys.Close() }

// Warmup advances without measuring.
func (h *HeteroSimulator) Warmup(cycles int) { h.sys.Run(cycles) }

// HeteroResults is the Section V measurement of one mix.
type HeteroResults struct {
	// CPUInstructions retired and GPUIterations completed during the
	// measured region — Fig. 8(b)/(c) speedups are ratios of these
	// between configurations.
	CPUInstructions int64
	GPUIterations   int64
	// GPUInjectionRate and GPUCSFraction reproduce Table III.
	GPUInjectionRate float64
	GPUCSFraction    float64
	// AvgCPULatency / AvgGPULatency are per-class mean packet latencies.
	AvgCPULatency float64
	AvgGPULatency float64
	// Hitchhikes and VicinityRides count path-sharing uses.
	Hitchhikes, VicinityRides int64
	// Energy is the network energy breakdown (Fig. 9).
	Energy Energy
	// Cycles is the measured-region length.
	Cycles int64
}

// Run measures the next region of the given length.
func (h *HeteroSimulator) Run(cycles int) HeteroResults {
	h.sys.EnableStats()
	h.sys.Run(cycles)
	r := h.sys.Result(int64(cycles))
	out := HeteroResults{
		CPUInstructions:  r.CPUInstructions,
		GPUIterations:    r.GPUIterations,
		GPUInjectionRate: r.GPUInjectionRate,
		GPUCSFraction:    r.GPUCSFraction,
		Hitchhikes:       r.Stats.Hitchhikes,
		VicinityRides:    r.Stats.VicinityRides,
		Energy:           energyFrom(r.Energy),
		Cycles:           r.Cycles,
	}
	if n := r.Stats.ClassLatencyCount[0]; n > 0 {
		out.AvgCPULatency = float64(r.Stats.ClassLatencySum[0]) / float64(n)
	}
	if n := r.Stats.ClassLatencyCount[1]; n > 0 {
		out.AvgGPULatency = float64(r.Stats.ClassLatencySum[1]) / float64(n)
	}
	return out
}

// Diagnose returns the invariant counters.
func (h *HeteroSimulator) Diagnose() Diagnostics {
	d := h.sys.Diagnose()
	return Diagnostics{
		MisroutedCS: d.MisroutedCS, DroppedCS: d.DroppedCS,
		LatchConflicts: d.LatchConflicts, StolenSlots: d.StolenSlots,
	}
}
