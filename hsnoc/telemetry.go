package hsnoc

import (
	"fmt"
	"io"

	"tdmnoc/internal/obs"
	"tdmnoc/internal/textplot"
)

// TelemetryOptions sizes the observability recorder attached by
// AttachTelemetry. Zero values pick defaults.
type TelemetryOptions struct {
	// Every closes a time-series window every K cycles (default 64;
	// <= 0 keeps the default — use the event ring alone via WriteTrace).
	Every int
	// RingCapacity bounds each worker shard's event timeline, rounded up
	// to a power of two (default 1 << 16 events; raise it for
	// full-fidelity Perfetto traces of longer runs).
	RingCapacity int
	// MaxSamples bounds the retained time-series windows (default 4096).
	MaxSamples int
	// KindMask restricts recording to the selected event kinds (0 = all;
	// build with obs.MaskOf). Masked kinds cost one branch per emission.
	KindMask uint32
	// RingSample records only every N-th event per emitter to the rings
	// (<= 1 = all). Aggregate counters stay exact; the sampled timeline
	// is deterministic across worker counts.
	RingSample int
	// TrackFlows aggregates exact per-(src, dst) flow counters, the
	// input to profile extraction (ExtractProfile) and the online
	// adaptive controller. Forced on when Config.AdaptiveEpoch > 0.
	// Requires the inject/eject/setup-latency kinds to pass KindMask
	// (obs.ProfileFlows includes them).
	TrackFlows bool
}

// AttachTelemetry creates an obs.Recorder sized by opt and attaches it
// to the simulator's network. Call it before Warmup/Run; the recorder
// then observes the rest of the simulation. Parallel executors are fully
// supported — the recorder keeps one shard per worker and merges them
// deterministically at export, so traces and summaries are byte-identical
// across worker counts. Not available for HybridSDM.
func (s *Simulator) AttachTelemetry(opt TelemetryOptions) (*obs.Recorder, error) {
	if s.net == nil {
		return nil, fmt.Errorf("hsnoc: telemetry is not available for %v", s.mode)
	}
	if s.rec != nil {
		return nil, fmt.Errorf("hsnoc: telemetry already attached")
	}
	every := opt.Every
	if every <= 0 {
		every = 64
	}
	// The online controller ranks flows from the recorder; any recorder
	// attached to an adaptive network must track them.
	trackFlows := opt.TrackFlows || s.cfg.AdaptiveEpoch > 0
	if trackFlows && opt.KindMask != 0 {
		need := obs.MaskOf(obs.KindInject, obs.KindEject, obs.KindSetupLatency)
		if opt.KindMask&need != need {
			return nil, fmt.Errorf("hsnoc: TrackFlows requires the inject, eject and setup-latency kinds in KindMask")
		}
	}
	rec := obs.NewRecorder(obs.RecorderConfig{
		Nodes:        s.net.Mesh().Nodes(),
		RingCapacity: opt.RingCapacity,
		SampleEvery:  every,
		MaxSamples:   opt.MaxSamples,
		Shards:       s.net.Workers(),
		KindMask:     opt.KindMask,
		RingSample:   opt.RingSample,
		TrackFlows:   trackFlows,
	})
	s.net.AttachProbe(rec, every)
	s.rec = rec
	s.recEvery = every
	return rec, nil
}

// Telemetry returns the attached recorder (nil if AttachTelemetry was
// never called).
func (s *Simulator) Telemetry() *obs.Recorder { return s.rec }

// LinkUtilizationGrid returns the per-link utilization heatmap grid
// recorded by the attached telemetry: a (2H-1) x (2W-1) interleaved grid
// of routers (ejection-link traffic) and inter-router links in
// flits/cycle. Returns nil when no telemetry is attached.
func (s *Simulator) LinkUtilizationGrid() [][]float64 {
	if s.rec == nil || s.net == nil {
		return nil
	}
	m := s.net.Mesh()
	return obs.LinkGrid(s.rec, m.Width, m.Height, int64(s.net.Now()))
}

// WriteTrace exports the recorded event timeline as Chrome trace-event
// JSON (Perfetto-loadable). Call after the run; requires an attached
// telemetry recorder.
func (s *Simulator) WriteTrace(w io.Writer) error {
	if s.rec == nil {
		return fmt.Errorf("hsnoc: no telemetry attached (call AttachTelemetry before the run)")
	}
	m := s.net.Mesh()
	// No toolchain or timestamp metadata: the trace must be a pure
	// function of (config, seed) so golden-file tests pin it. The shard
	// rings are merged into the deterministic timeline first, so the
	// bytes do not depend on the worker count either.
	meta := obs.TraceMeta{
		Width: m.Width, Height: m.Height,
		OtherData: map[string]string{
			"mode":       s.mode.String(),
			"mesh":       fmt.Sprintf("%dx%d", m.Width, m.Height),
			"seed":       fmt.Sprintf("%d", s.cfg.Seed),
			"ring_drops": fmt.Sprintf("%d", s.rec.Dropped()),
		},
	}
	events := obs.MergeRings(s.rec.Rings(), m.Width, m.Height)
	return obs.WriteTraceEvents(w, events, meta)
}

// RenderTelemetry renders the recorded time-series windows as terminal
// plots (CS/PS throughput and occupancy).
func (s *Simulator) RenderTelemetry() (string, error) {
	if s.rec == nil {
		return "", fmt.Errorf("hsnoc: no telemetry attached")
	}
	return obs.RenderTimeSeries(s.rec.Samples(), s.recEvery)
}

// RenderLinkHeatmap renders the per-link utilization heatmap.
func (s *Simulator) RenderLinkHeatmap() (string, error) {
	grid := s.LinkUtilizationGrid()
	if grid == nil {
		return "", fmt.Errorf("hsnoc: no telemetry attached")
	}
	return textplot.Heatmap("link utilisation (flits/cycle; routers at even cells)", grid), nil
}
