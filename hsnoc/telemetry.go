package hsnoc

import (
	"fmt"
	"io"

	"tdmnoc/internal/obs"
	"tdmnoc/internal/textplot"
)

// TelemetryOptions sizes the observability recorder attached by
// AttachTelemetry. Zero values pick defaults.
type TelemetryOptions struct {
	// Every closes a time-series window every K cycles (default 64;
	// <= 0 keeps the default — use the event ring alone via WriteTrace).
	Every int
	// RingCapacity bounds the event timeline (default 1 << 16 events;
	// raise it for full-fidelity Perfetto traces of longer runs).
	RingCapacity int
	// MaxSamples bounds the retained time-series windows (default 4096).
	MaxSamples int
}

// AttachTelemetry creates an obs.Recorder sized by opt and attaches it
// to the simulator's network. Call it before Warmup/Run; the recorder
// then observes the rest of the simulation. Like TraceEvents it requires
// a serial executor (Workers <= 1) and is not available for HybridSDM.
func (s *Simulator) AttachTelemetry(opt TelemetryOptions) (*obs.Recorder, error) {
	if s.net == nil {
		return nil, fmt.Errorf("hsnoc: telemetry is not available for %v", s.mode)
	}
	if s.cfg.Workers > 1 {
		return nil, fmt.Errorf("hsnoc: telemetry requires Workers <= 1")
	}
	if s.rec != nil {
		return nil, fmt.Errorf("hsnoc: telemetry already attached")
	}
	every := opt.Every
	if every <= 0 {
		every = 64
	}
	rec := obs.NewRecorder(obs.RecorderConfig{
		Nodes:        s.net.Mesh().Nodes(),
		RingCapacity: opt.RingCapacity,
		SampleEvery:  every,
		MaxSamples:   opt.MaxSamples,
	})
	s.net.AttachProbe(rec, every)
	s.rec = rec
	s.recEvery = every
	return rec, nil
}

// Telemetry returns the attached recorder (nil if AttachTelemetry was
// never called).
func (s *Simulator) Telemetry() *obs.Recorder { return s.rec }

// LinkUtilizationGrid returns the per-link utilization heatmap grid
// recorded by the attached telemetry: a (2H-1) x (2W-1) interleaved grid
// of routers (ejection-link traffic) and inter-router links in
// flits/cycle. Returns nil when no telemetry is attached.
func (s *Simulator) LinkUtilizationGrid() [][]float64 {
	if s.rec == nil || s.net == nil {
		return nil
	}
	m := s.net.Mesh()
	return obs.LinkGrid(s.rec, m.Width, m.Height, int64(s.net.Now()))
}

// WriteTrace exports the recorded event timeline as Chrome trace-event
// JSON (Perfetto-loadable). Call after the run; requires an attached
// telemetry recorder.
func (s *Simulator) WriteTrace(w io.Writer) error {
	if s.rec == nil {
		return fmt.Errorf("hsnoc: no telemetry attached (call AttachTelemetry before the run)")
	}
	m := s.net.Mesh()
	// No toolchain or timestamp metadata: the trace must be a pure
	// function of (config, seed) so golden-file tests pin it.
	meta := obs.TraceMeta{
		Width: m.Width, Height: m.Height,
		OtherData: map[string]string{
			"mode":       s.mode.String(),
			"mesh":       fmt.Sprintf("%dx%d", m.Width, m.Height),
			"seed":       fmt.Sprintf("%d", s.cfg.Seed),
			"ring_drops": fmt.Sprintf("%d", s.rec.Dropped()),
		},
	}
	return obs.WriteTrace(w, s.rec.Ring(), meta)
}

// RenderTelemetry renders the recorded time-series windows as terminal
// plots (CS/PS throughput and occupancy).
func (s *Simulator) RenderTelemetry() (string, error) {
	if s.rec == nil {
		return "", fmt.Errorf("hsnoc: no telemetry attached")
	}
	return obs.RenderTimeSeries(s.rec.Samples(), s.recEvery)
}

// RenderLinkHeatmap renders the per-link utilization heatmap.
func (s *Simulator) RenderLinkHeatmap() (string, error) {
	grid := s.LinkUtilizationGrid()
	if grid == nil {
		return "", fmt.Errorf("hsnoc: no telemetry attached")
	}
	return textplot.Heatmap("link utilisation (flits/cycle; routers at even cells)", grid), nil
}
