package hsnoc

import (
	"bytes"
	"encoding/json"
	"testing"

	"tdmnoc/internal/obs"
)

// tracedScenario builds the traced worker-matrix scenario: a 4x4
// hybrid-TDM mesh under tornado traffic, invariant checking on so the
// rolling digest is collected.
func tracedScenario(workers int) Config {
	cfg := DefaultConfig(4, 4)
	cfg.Mode = HybridTDM
	cfg.Seed = 11
	cfg.Workers = workers
	cfg.CheckInvariants = true
	cfg.CheckInterval = 64
	return cfg
}

// tracedRun runs the scenario traced and returns the exported trace
// bytes, the marshalled telemetry summary, and the rolling digest.
func tracedRun(t *testing.T, workers int) (trace, summary []byte, digest uint64) {
	t.Helper()
	s := NewSynthetic(tracedScenario(workers), Tornado, 0.15)
	defer s.Close()
	rec, err := s.AttachTelemetry(TelemetryOptions{Every: 64, RingCapacity: 1 << 17})
	if err != nil {
		t.Fatalf("AttachTelemetry(workers=%d): %v", workers, err)
	}
	s.Warmup(300)
	s.Run(1200)
	if err := s.InvariantError(); err != nil {
		t.Fatalf("workers=%d: invariant violations: %v", workers, err)
	}
	if d := rec.Dropped(); d != 0 {
		t.Fatalf("workers=%d: ring dropped %d events — scenario must be drop-free", workers, d)
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace(workers=%d): %v", workers, err)
	}
	sum, err := json.Marshal(rec.Summary())
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sum, s.RollingDigest()
}

// TestMergePreservesSerialOrder pins the merge fidelity contract at its
// root: for a single-shard (serial) recorder, MergeRings must return the
// ring's events in exactly their emission order — the stable sort by
// (cycle, class, emitter) is the identity on a serial stream. Everything
// else (golden trace stability, worker invariance) builds on this.
func TestMergePreservesSerialOrder(t *testing.T) {
	s := NewSynthetic(tracedScenario(1), Tornado, 0.15)
	defer s.Close()
	rec, err := s.AttachTelemetry(TelemetryOptions{Every: 64, RingCapacity: 1 << 17})
	if err != nil {
		t.Fatalf("AttachTelemetry: %v", err)
	}
	s.Warmup(300)
	s.Run(1200)
	raw := rec.Ring().Snapshot()
	merged := obs.MergeRings(rec.Rings(), 4, 4)
	if len(raw) != len(merged) {
		t.Fatalf("merged %d events, raw %d", len(merged), len(raw))
	}
	for i := range raw {
		if raw[i] != merged[i] {
			t.Fatalf("merge reordered the serial stream at %d:\n raw    %+v\n merged %+v",
				i, raw[i], merged[i])
		}
	}
}

// TestTraceBytesWorkerInvariant is the tentpole acceptance property:
// the exported Perfetto trace and the telemetry summary are
// byte-identical at Workers 1, 4 and 8 — sharded recording plus the
// deterministic merge reconstruct the serial timeline exactly.
func TestTraceBytesWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("worker matrix in -short mode")
	}
	trace1, sum1, _ := tracedRun(t, 1)
	for _, w := range []int{4, 8} {
		traceW, sumW, _ := tracedRun(t, w)
		if !bytes.Equal(trace1, traceW) {
			t.Errorf("trace bytes differ between Workers=1 (%d bytes) and Workers=%d (%d bytes)",
				len(trace1), w, len(traceW))
		}
		if !bytes.Equal(sum1, sumW) {
			t.Errorf("summaries differ between Workers=1 and Workers=%d:\n %s\n %s", w, sum1, sumW)
		}
	}
}

// TestTracedDigestMatchesUntraced asserts tracing is a pure observer:
// at every worker count the traced run's rolling invariant digest equals
// the untraced serial run's digest.
func TestTracedDigestMatchesUntraced(t *testing.T) {
	if testing.Short() {
		t.Skip("worker matrix in -short mode")
	}
	// Untraced serial baseline.
	base := NewSynthetic(tracedScenario(1), Tornado, 0.15)
	base.Warmup(300)
	base.Run(1200)
	want := base.RollingDigest()
	base.Close()
	if want == 0 {
		t.Fatal("baseline digest is zero — invariant checking not active")
	}
	for _, w := range []int{1, 4, 8} {
		if _, _, got := tracedRun(t, w); got != want {
			t.Errorf("traced digest at Workers=%d = %#x, untraced serial = %#x", w, got, want)
		}
	}
}

// TestTracedParallelRace drives a fully traced Workers=8 run to
// completion including drain and export; CI runs this package under
// -race, making it the data-race canary for per-worker shard writes.
func TestTracedParallelRace(t *testing.T) {
	s := NewSynthetic(tracedScenario(8), UniformRandom, 0.25)
	defer s.Close()
	rec, err := s.AttachTelemetry(TelemetryOptions{Every: 32, RingCapacity: 1 << 16})
	if err != nil {
		t.Fatalf("AttachTelemetry: %v", err)
	}
	s.Warmup(200)
	res := s.Run(1000)
	s.StopTraffic()
	s.Drain(2000)
	if err := s.InvariantError(); err != nil {
		t.Fatalf("invariant violations: %v", err)
	}
	if res.Packets == 0 || rec.Events() == 0 {
		t.Fatalf("run moved no traffic (packets=%d, events=%d)", res.Packets, rec.Events())
	}
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace")
	}
}
