package hsnoc

import (
	"bytes"
	"encoding/json"
	"testing"
)

// flowStatsRun executes the 32x32 hybrid-TDM tornado workload with flow
// tracking and returns the merged per-flow aggregates as stable JSON
// bytes.
func flowStatsRun(t *testing.T, workers int, partition string) []byte {
	t.Helper()
	cfg := DefaultConfig(32, 32)
	cfg.Mode = HybridTDM
	cfg.PathSharing = true
	cfg.Seed = 7
	cfg.Workers = workers
	cfg.Partition = partition
	s := NewSynthetic(cfg, Tornado, 0.20)
	defer s.Close()
	rec, err := s.AttachTelemetry(TelemetryOptions{Every: 64, RingCapacity: 1 << 16, TrackFlows: true})
	if err != nil {
		t.Fatalf("AttachTelemetry(workers=%d, partition=%q): %v", workers, partition, err)
	}
	s.Warmup(200)
	s.Run(400)
	b, err := json.Marshal(rec.FlowStats())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFlowStatsWorkerInvariantLargeMesh pins sharded flow tracking at
// the large-mesh smoke size: the merged FlowStats must be byte-identical
// across worker counts and across partition layouts. The per-shard
// aggregation follows tile ownership — which both the worker count and
// the partitioner reshape — so this is the telemetry-side counterpart
// of the state-digest layout matrix in internal/network.
func TestFlowStatsWorkerInvariantLargeMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("32x32 runs too long for -short")
	}
	serial := flowStatsRun(t, 1, "")
	if len(serial) <= len("[]") {
		t.Fatal("serial run tracked no flows; the invariance comparison would be vacuous")
	}
	for _, workers := range []int{8, 16} {
		if b := flowStatsRun(t, workers, ""); !bytes.Equal(serial, b) {
			t.Errorf("FlowStats differ between Workers=1 (%d bytes) and Workers=%d (%d bytes)",
				len(serial), workers, len(b))
		}
	}
	if b := flowStatsRun(t, 8, "stride"); !bytes.Equal(serial, b) {
		t.Errorf("FlowStats differ between block Workers=1 (%d bytes) and stride Workers=8 (%d bytes)",
			len(serial), len(b))
	}
}
