package hsnoc

import (
	"fmt"

	"tdmnoc/internal/policy"
	"tdmnoc/internal/topology"
)

// Profile is the adaptive-policy traffic profile (re-exported from the
// pure policy engine so public callers never import internal packages).
type Profile = policy.Profile

// Decision is a policy's configuration delta.
type Decision = policy.Decision

// ParsePolicy resolves a policy spec string ("static", "threshold",
// "greedy:8", "sdm-gate", ...).
func ParsePolicy(spec string) (policy.Policy, error) { return policy.Parse(spec) }

// ReadProfileFile loads a profile written by Profile.WriteFile (or
// `nocsim -profile-out`), rejecting unknown fields.
func ReadProfileFile(path string) (*Profile, error) { return policy.ReadProfileFile(path) }

// modeToken is the campaign/scenario spelling of a Mode.
func (m Mode) modeToken() string {
	switch m {
	case HybridTDM:
		return "tdm"
	case HybridSDM:
		return "sdm"
	default:
		return "packet"
	}
}

// ExtractProfile derives the run's traffic profile from the attached
// telemetry recorder: per-flow volume/latency/setup aggregates, link
// heat, the setup-latency histogram, and the converged slot-table
// state, keyed by this configuration's Hash. It requires telemetry
// attached with TrackFlows (the profile→re-run campaign driver and
// `nocsim -profile-out` both attach it for you) and is not available
// for HybridSDM, whose engine predates the obs layer. The result is a
// pure function of the simulation — byte-identical JSON at any worker
// count.
func (s *Simulator) ExtractProfile() (*Profile, error) {
	if s.net == nil {
		return nil, fmt.Errorf("hsnoc: profile extraction is not available for %v", s.mode)
	}
	if s.rec == nil || !s.rec.FlowTracking() {
		return nil, fmt.Errorf("hsnoc: profile extraction requires AttachTelemetry with TrackFlows")
	}
	p, err := policy.FromRecorder(s.rec, s.cfg.Width, s.cfg.Height, int(topology.NumPorts))
	if err != nil {
		return nil, err
	}
	p.ConfigHash = s.cfg.Hash()
	p.Mode = s.cfg.Mode.modeToken()
	if s.cfg.Mode == HybridTDM {
		p.SlotActive = s.net.ActiveSlots()
		p.SlotCapacity = s.net.Config().Router.SlotCapacity
		p.ResizeEvents = s.net.ResizeEvents()
	}
	return p, nil
}

// AdaptiveRepins reports how many epoch re-allocations the online
// controller performed (0 unless Config.AdaptiveEpoch; see the config
// field). Not available for HybridSDM.
func (s *Simulator) AdaptiveRepins() int {
	if s.net == nil {
		return 0
	}
	return s.net.AdaptiveRepins()
}

// ApplyDecision returns cfg with a policy Decision applied: pinned
// flows, setup restriction, the initial slot-table region, the DLT
// size, or — for SDM-gating decisions — the switch to HybridSDM with
// gated planes. The mapping is pure configuration, so the re-run's
// results and state digest are a function of (cfg, d) alone; applying
// the same decision twice yields byte-identical digests (pinned by
// test). The caller is responsible for checking that the profile that
// produced d matches cfg (Profile.ConfigHash vs cfg.Hash()).
func ApplyDecision(cfg Config, d Decision) (Config, error) {
	if d.UseSDM {
		planes := cfg.Planes
		if planes == 0 {
			planes = 4
		}
		if d.GatedPlanes < 0 || d.GatedPlanes > planes-2 {
			return cfg, fmt.Errorf("hsnoc: decision gates %d of %d planes (at least 2 must stay on)", d.GatedPlanes, planes)
		}
		cfg.Mode = HybridSDM
		// TDM-only and engine-unsupported options are cleared rather
		// than rejected: an SDM-gating decision applied to the TDM base
		// config is the expected cross-architecture comparison.
		cfg.PathSharing = false
		cfg.VCPowerGating = false
		cfg.LatencyBasedVCGating = false
		cfg.CheckInvariants = false
		cfg.DisableDynamicSlotSizing = false
		cfg.SlotInit, cfg.PinnedFlows, cfg.RestrictSetups = 0, nil, false
		cfg.AdaptiveEpoch, cfg.AdaptiveTopK = 0, 0
		cfg.GatedPlanes = d.GatedPlanes
		return cfg, nil
	}
	if cfg.Mode != HybridTDM && (len(d.PinnedFlows) > 0 || d.RestrictSetups || d.SlotInit > 0 || d.DLTEntries > 0) {
		return cfg, fmt.Errorf("hsnoc: policy %q decision needs a Hybrid-TDM base config", d.Policy)
	}
	nodes := cfg.Width * cfg.Height
	for _, p := range d.PinnedFlows {
		if p.Src < 0 || p.Src >= nodes || p.Dst < 0 || p.Dst >= nodes {
			return cfg, fmt.Errorf("hsnoc: pinned flow %d->%d outside the %dx%d mesh", p.Src, p.Dst, cfg.Width, cfg.Height)
		}
	}
	slots := cfg.SlotTableEntries
	if slots == 0 {
		slots = 128
	}
	if d.SlotInit < 0 || d.SlotInit > slots {
		return cfg, fmt.Errorf("hsnoc: decision slot_init %d outside [0, %d]", d.SlotInit, slots)
	}
	cfg.PinnedFlows = append([]FlowPin(nil), d.PinnedFlows...)
	cfg.RestrictSetups = d.RestrictSetups
	cfg.SlotInit = d.SlotInit
	if d.DLTEntries > 0 {
		cfg.DLTEntries = d.DLTEntries
	}
	return cfg, nil
}
