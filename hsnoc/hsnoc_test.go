package hsnoc

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{
		PacketSwitched: "Packet-VC4", HybridTDM: "Hybrid-TDM", HybridSDM: "Hybrid-SDM",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q want %q", m, m.String(), s)
		}
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode empty")
	}
}

func TestSyntheticPacketSwitched(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	s := NewSynthetic(cfg, Tornado, 0.10)
	defer s.Close()
	s.Warmup(2000)
	res := s.Run(8000)
	if res.Packets == 0 {
		t.Fatal("no packets delivered")
	}
	if res.AvgNetLatency < 10 || res.AvgNetLatency > 60 {
		t.Errorf("implausible latency %.1f", res.AvgNetLatency)
	}
	if math.Abs(res.Throughput-0.10) > 0.02 {
		t.Errorf("throughput %.3f, offered 0.10", res.Throughput)
	}
	if res.CSFlitFraction != 0 {
		t.Error("packet-switched run had CS flits")
	}
	d := s.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 || d.LatchConflicts != 0 {
		t.Errorf("diagnostics dirty: %+v", d)
	}
}

func TestSyntheticHybridTDM(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	cfg.Mode = HybridTDM
	s := NewSynthetic(cfg, Tornado, 0.10)
	defer s.Close()
	s.Warmup(4000)
	res := s.Run(10000)
	if res.CSFlitFraction == 0 {
		t.Error("hybrid run circuit-switched nothing")
	}
	if res.CircuitsEstablished == 0 {
		t.Error("no circuits established")
	}
	if res.ActiveSlotEntries == 0 {
		t.Error("no active slot entries reported")
	}
	if res.Energy.TotalPJ <= 0 {
		t.Error("no energy recorded")
	}
	d := s.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 {
		t.Errorf("CS invariants: %+v", d)
	}
	if d.StolenSlots == 0 {
		t.Error("no time-slot stealing observed")
	}
}

func TestHybridSavesEnergyOnTornado(t *testing.T) {
	run := func(mode Mode) Results {
		cfg := DefaultConfig(6, 6)
		cfg.Mode = mode
		s := NewSynthetic(cfg, Tornado, 0.15)
		defer s.Close()
		s.Warmup(4000)
		return s.Run(12000)
	}
	base := run(PacketSwitched)
	tdm := run(HybridTDM)
	saving := tdm.EnergySavingVs(base)
	if saving <= 0.05 {
		t.Errorf("TDM energy saving %.3f on tornado, want > 5%%", saving)
	}
	if tdm.AvgNetLatency >= base.AvgNetLatency {
		t.Errorf("TDM net latency %.1f not below baseline %.1f", tdm.AvgNetLatency, base.AvgNetLatency)
	}
}

func TestSDMMode(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	cfg.Mode = HybridSDM
	s := NewSynthetic(cfg, Tornado, 0.08)
	defer s.Close()
	s.Warmup(3000)
	res := s.Run(8000)
	if res.Packets == 0 {
		t.Fatal("SDM delivered nothing")
	}
	// Serialization: SDM latency must exceed the full-width baseline's.
	base := NewSynthetic(DefaultConfig(6, 6), Tornado, 0.08)
	defer base.Close()
	base.Warmup(3000)
	b := base.Run(8000)
	if res.AvgNetLatency <= b.AvgNetLatency {
		t.Errorf("SDM latency %.1f not above full-width %.1f at low load", res.AvgNetLatency, b.AvgNetLatency)
	}
}

func TestRouterArea(t *testing.T) {
	ps := DefaultConfig(6, 6)
	hy := DefaultConfig(6, 6)
	hy.Mode = HybridTDM
	a, b := ps.RouterAreaMM2(), hy.RouterAreaMM2()
	if math.Abs(a-0.177) > 0.002 || math.Abs(b-0.188) > 0.002 {
		t.Errorf("areas %.4f / %.4f, want 0.177 / 0.188", a, b)
	}
}

func TestBenchmarkLists(t *testing.T) {
	if len(CPUBenchmarks()) != 8 {
		t.Errorf("%d CPU benchmarks, want 8", len(CPUBenchmarks()))
	}
	if len(GPUBenchmarks()) != 7 {
		t.Errorf("%d GPU benchmarks, want 7", len(GPUBenchmarks()))
	}
}

func TestHeterogeneousFacade(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	cfg.Mode = HybridTDM
	h, err := NewHeterogeneous(cfg, "EQUAKE", "BLACKSCHOLES")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	h.Warmup(3000)
	res := h.Run(8000)
	if res.CPUInstructions == 0 || res.GPUIterations == 0 {
		t.Fatal("no work completed")
	}
	if res.GPUCSFraction <= 0 {
		t.Error("no GPU circuit switching")
	}
	if res.Energy.TotalPJ <= 0 {
		t.Error("no energy")
	}
	d := h.Diagnose()
	if d.MisroutedCS != 0 || d.DroppedCS != 0 {
		t.Errorf("invariants: %+v", d)
	}
}

func TestHeterogeneousErrors(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	if _, err := NewHeterogeneous(cfg, "NOPE", "STO"); err == nil {
		t.Error("bogus CPU benchmark accepted")
	}
	if _, err := NewHeterogeneous(cfg, "SWIM", "NOPE"); err == nil {
		t.Error("bogus GPU benchmark accepted")
	}
	cfg.Mode = HybridSDM
	if _, err := NewHeterogeneous(cfg, "SWIM", "STO"); err == nil {
		t.Error("SDM hetero accepted")
	}
}

func TestScaledHeterogeneousLayout(t *testing.T) {
	cfg := DefaultConfig(8, 8)
	cfg.Mode = HybridTDM
	h, err := NewHeterogeneous(cfg, "ART", "LPS")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	h.Warmup(1000)
	res := h.Run(3000)
	if res.CPUInstructions == 0 || res.GPUIterations == 0 {
		t.Fatal("scaled layout did no work")
	}
}

func TestDeterministicFacade(t *testing.T) {
	run := func() Results {
		cfg := DefaultConfig(4, 4)
		cfg.Mode = HybridTDM
		cfg.Seed = 9
		s := NewSynthetic(cfg, UniformRandom, 0.1)
		defer s.Close()
		s.Warmup(1000)
		return s.Run(3000)
	}
	a, b := run(), run()
	if a.Packets != b.Packets || a.Energy.TotalPJ != b.Energy.TotalPJ {
		t.Fatalf("nondeterministic facade: %+v vs %+v", a.Packets, b.Packets)
	}
}

func TestConfigSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	cfg.Mode = HybridTDM
	cfg.PathSharing = true
	cfg.SAIterations = 2
	cfg.Seed = 42
	var buf bytes.Buffer
	if err := SaveConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := LoadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cfg) {
		t.Fatalf("round trip changed config:\n%+v\n%+v", got, cfg)
	}
}

func TestLoadConfigRejectsBadInput(t *testing.T) {
	cases := []string{
		"not json",
		`{"Width": 0, "Height": 6}`,
		`{"Width": 6, "Height": 6, "Mode": 99}`,
		`{"Width": 6, "Height": 6, "Typo": true}`,
		`{"Width": 6, "Height": 6, "VCs": -1}`,
		`{"Width": 6, "Height": 6, "Mode": 2, "PathSharing": true}`,
		`{"Width": 6, "Height": 6, "Mode": 0, "PathSharing": true}`,
	}
	for i, c := range cases {
		if _, err := LoadConfig(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %s", i, c)
		}
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	for _, m := range []Mode{PacketSwitched, HybridTDM, HybridSDM} {
		cfg := DefaultConfig(6, 6)
		cfg.Mode = m
		if err := cfg.Validate(); err != nil {
			t.Errorf("default %v config rejected: %v", m, err)
		}
	}
}

func TestUtilizationGrid(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	s := NewSynthetic(cfg, Tornado, 0.2)
	defer s.Close()
	s.Warmup(500)
	s.Run(2000)
	grid := s.UtilizationGrid()
	if len(grid) != 4 || len(grid[0]) != 4 {
		t.Fatalf("grid shape %dx%d", len(grid), len(grid[0]))
	}
	busy := 0.0
	for _, row := range grid {
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("utilisation %v out of [0,1]", v)
			}
			busy += v
		}
	}
	if busy == 0 {
		t.Fatal("no router did any work")
	}
	// SDM mode has no grid.
	sd := DefaultConfig(4, 4)
	sd.Mode = HybridSDM
	sdm := NewSynthetic(sd, Tornado, 0.1)
	defer sdm.Close()
	if sdm.UtilizationGrid() != nil {
		t.Error("SDM returned a grid")
	}
}

func TestTraceEventsRestrictions(t *testing.T) {
	sd := DefaultConfig(4, 4)
	sd.Mode = HybridSDM
	s := NewSynthetic(sd, Tornado, 0.1)
	defer s.Close()
	if err := s.TraceEvents(io.Discard); err == nil {
		t.Error("SDM event tracing accepted")
	}
	pw := DefaultConfig(4, 4)
	pw.Workers = 4
	p := NewSynthetic(pw, Tornado, 0.1)
	defer p.Close()
	if err := p.TraceEvents(io.Discard); err == nil {
		t.Error("parallel event tracing accepted")
	}
	ok := NewSynthetic(DefaultConfig(4, 4), Tornado, 0.1)
	defer ok.Close()
	if err := ok.TraceEvents(io.Discard); err != nil {
		t.Errorf("serial tracing rejected: %v", err)
	}
}

func TestStopTrafficAndDrain(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.Mode = HybridTDM
	s := NewSynthetic(cfg, UniformRandom, 0.15)
	defer s.Close()
	s.Warmup(2000)
	s.StopTraffic()
	if !s.Drain(20000) {
		t.Fatal("network failed to drain after StopTraffic")
	}
	// SDM path too.
	sd := DefaultConfig(4, 4)
	sd.Mode = HybridSDM
	x := NewSynthetic(sd, Tornado, 0.1)
	defer x.Close()
	x.Warmup(2000)
	x.StopTraffic()
	if !x.Drain(30000) {
		t.Fatal("SDM failed to drain after StopTraffic")
	}
}
