package hsnoc_test

import (
	"fmt"

	"tdmnoc/hsnoc"
)

// The canonical comparison: the same tornado workload on the
// packet-switched baseline and the TDM hybrid-switched network.
func Example() {
	base := hsnoc.NewSynthetic(hsnoc.DefaultConfig(6, 6), hsnoc.Tornado, 0.10)
	defer base.Close()
	base.Warmup(4000)
	baseRes := base.Run(10000)

	cfg := hsnoc.DefaultConfig(6, 6)
	cfg.Mode = hsnoc.HybridTDM
	tdm := hsnoc.NewSynthetic(cfg, hsnoc.Tornado, 0.10)
	defer tdm.Close()
	tdm.Warmup(4000)
	tdmRes := tdm.Run(10000)

	fmt.Println("hybrid latency lower:", tdmRes.AvgNetLatency < baseRes.AvgNetLatency)
	fmt.Println("hybrid saves energy:", tdmRes.EnergySavingVs(baseRes) > 0)
	fmt.Println("circuits used:", tdmRes.CSFlitFraction > 0.5)
	// Output:
	// hybrid latency lower: true
	// hybrid saves energy: true
	// circuits used: true
}

// Router area matches the paper's Section IV-A synthesis numbers.
func ExampleConfig_RouterAreaMM2() {
	ps := hsnoc.DefaultConfig(6, 6)
	hy := hsnoc.DefaultConfig(6, 6)
	hy.Mode = hsnoc.HybridTDM
	fmt.Printf("packet %.3f mm2, hybrid %.3f mm2\n", ps.RouterAreaMM2(), hy.RouterAreaMM2())
	// Output:
	// packet 0.177 mm2, hybrid 0.188 mm2
}

// Heterogeneous evaluation: CPU traffic stays packet-switched while GPU
// traffic rides circuits.
func ExampleNewHeterogeneous() {
	cfg := hsnoc.DefaultConfig(6, 6)
	cfg.Mode = hsnoc.HybridTDM
	h, err := hsnoc.NewHeterogeneous(cfg, "EQUAKE", "BLACKSCHOLES")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer h.Close()
	h.Warmup(4000)
	res := h.Run(10000)
	fmt.Println("GPU circuits used:", res.GPUCSFraction > 0.05)
	fmt.Println("CPUs made progress:", res.CPUInstructions > 0)
	// Output:
	// GPU circuits used: true
	// CPUs made progress: true
}
