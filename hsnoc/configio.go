package hsnoc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// SaveConfig writes cfg as indented JSON.
func SaveConfig(w io.Writer, cfg Config) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cfg)
}

// LoadConfig reads a JSON configuration written by SaveConfig (unknown
// fields are rejected so typos fail loudly) and validates it.
func LoadConfig(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg Config
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("hsnoc: bad config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Hash returns a canonical fingerprint of the configuration: a SHA-256
// over its stable field-order JSON encoding (Go marshals struct fields
// in declaration order). Two configs hash equal exactly when every
// field, including Seed, is equal — Workers, Partition and
// InjectRingCap are excluded because executor parallelism, the worker
// tile-partitioning layout and the injection-ring pre-size never change
// simulation results, and the invariant-checking knobs
// (CheckInvariants, CheckInterval) are excluded because checking only
// observes a run. The hash is the cache key of the campaign engine, so
// adding or reordering Config fields invalidates cached campaign
// results (by design: a hash must never collide across semantically
// different configs).
func (c Config) Hash() string {
	c.Workers = 0
	c.Partition = ""
	c.InjectRingCap = 0
	c.CheckInvariants = false
	c.CheckInterval = 0
	b, err := json.Marshal(c)
	if err != nil {
		// Config is a flat struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("hsnoc: config hash: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Validate checks a configuration for structural errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("hsnoc: mesh %dx%d invalid", c.Width, c.Height)
	}
	if c.Mode < PacketSwitched || c.Mode > HybridSDM {
		return fmt.Errorf("hsnoc: unknown mode %d", c.Mode)
	}
	if c.VCs < 0 || c.BufferDepth < 0 || c.SlotTableEntries < 0 || c.Planes < 0 || c.SAIterations < 0 {
		return fmt.Errorf("hsnoc: negative structural parameter")
	}
	if c.CheckInterval < 0 {
		return fmt.Errorf("hsnoc: negative check interval %d", c.CheckInterval)
	}
	if c.Mode == HybridSDM && (c.PathSharing || c.VCPowerGating || c.LatencyBasedVCGating) {
		return fmt.Errorf("hsnoc: TDM options set on an SDM configuration")
	}
	if c.Mode != HybridTDM && c.PathSharing {
		return fmt.Errorf("hsnoc: PathSharing requires HybridTDM")
	}
	if c.DLTEntries < 0 {
		return fmt.Errorf("hsnoc: negative DLT size %d", c.DLTEntries)
	}
	if c.SlotInit < 0 {
		return fmt.Errorf("hsnoc: negative SlotInit %d", c.SlotInit)
	}
	if c.SlotInit > 0 {
		if c.Mode != HybridTDM {
			return fmt.Errorf("hsnoc: SlotInit requires HybridTDM")
		}
		slots := c.SlotTableEntries
		if slots == 0 {
			slots = 128
		}
		if c.SlotInit > slots {
			return fmt.Errorf("hsnoc: SlotInit %d exceeds the %d-entry slot table", c.SlotInit, slots)
		}
	}
	if (len(c.PinnedFlows) > 0 || c.RestrictSetups) && c.Mode != HybridTDM {
		return fmt.Errorf("hsnoc: flow pinning requires HybridTDM")
	}
	nodes := c.Width * c.Height
	for _, p := range c.PinnedFlows {
		if p.Src < 0 || p.Src >= nodes || p.Dst < 0 || p.Dst >= nodes {
			return fmt.Errorf("hsnoc: pinned flow %d->%d outside the %dx%d mesh", p.Src, p.Dst, c.Width, c.Height)
		}
	}
	if c.GatedPlanes != 0 {
		if c.Mode != HybridSDM {
			return fmt.Errorf("hsnoc: GatedPlanes requires HybridSDM")
		}
		planes := c.Planes
		if planes == 0 {
			planes = 4
		}
		if c.GatedPlanes < 0 || c.GatedPlanes > planes-2 {
			return fmt.Errorf("hsnoc: GatedPlanes %d of %d planes (at least 2 must stay on)", c.GatedPlanes, planes)
		}
	}
	if c.AdaptiveEpoch < 0 || c.AdaptiveTopK < 0 {
		return fmt.Errorf("hsnoc: negative adaptive parameter")
	}
	if c.InjectRingCap < 0 {
		return fmt.Errorf("hsnoc: negative InjectRingCap %d", c.InjectRingCap)
	}
	if c.AdaptiveEpoch > 0 && c.Mode != HybridTDM {
		return fmt.Errorf("hsnoc: AdaptiveEpoch requires HybridTDM")
	}
	return nil
}
