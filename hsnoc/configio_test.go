package hsnoc

import (
	"bytes"
	"testing"
)

// TestConfigHashRoundTrip checks that the canonical hash survives a
// Save/Load round trip — the property the campaign result cache relies
// on when a spec is re-submitted from its persisted form.
func TestConfigHashRoundTrip(t *testing.T) {
	cfg := DefaultConfig(6, 6)
	cfg.Mode = HybridTDM
	cfg.PathSharing = true
	cfg.VCPowerGating = true
	cfg.SlotTableEntries = 64
	cfg.Seed = 42

	var buf bytes.Buffer
	if err := SaveConfig(&buf, cfg); err != nil {
		t.Fatalf("SaveConfig: %v", err)
	}
	got, err := LoadConfig(&buf)
	if err != nil {
		t.Fatalf("LoadConfig: %v", err)
	}
	if got.Hash() != cfg.Hash() {
		t.Errorf("hash changed across round trip: %s != %s", got.Hash(), cfg.Hash())
	}
}

func TestConfigHashSensitivity(t *testing.T) {
	base := DefaultConfig(6, 6)
	base.Mode = HybridTDM
	h0 := base.Hash()
	if len(h0) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(h0))
	}
	if h1 := base.Hash(); h1 != h0 {
		t.Errorf("hash not deterministic: %s != %s", h1, h0)
	}

	mods := map[string]func(Config) Config{
		"seed":       func(c Config) Config { c.Seed = 2; return c },
		"mode":       func(c Config) Config { c.Mode = PacketSwitched; return c },
		"width":      func(c Config) Config { c.Width = 8; return c },
		"slot table": func(c Config) Config { c.SlotTableEntries = 256; return c },
		"sharing":    func(c Config) Config { c.PathSharing = true; return c },
		"vc gating":  func(c Config) Config { c.VCPowerGating = true; return c },
	}
	for name, mod := range mods {
		if mod(base).Hash() == h0 {
			t.Errorf("changing %s did not change the hash", name)
		}
	}

	// Workers is explicitly excluded: executor parallelism never
	// changes results, so parallel and serial runs must share cache
	// entries.
	w := base
	w.Workers = 8
	if w.Hash() != h0 {
		t.Errorf("Workers changed the hash: parallel and serial runs would miss each other's cache entries")
	}

	// Partition is likewise excluded: block vs stride layout only
	// changes cache behaviour, never results, so A/B layout runs must
	// share cache entries too.
	p := base
	p.Partition = "stride"
	if p.Hash() != h0 {
		t.Errorf("Partition changed the hash: layout A/B runs would miss each other's cache entries")
	}

	// InjectRingCap is a capacity hint with no observable effect on the
	// simulation, so it must not fragment the campaign cache either.
	q := base
	q.InjectRingCap = 4096
	if q.Hash() != h0 {
		t.Errorf("InjectRingCap changed the hash: ring pre-sizing would invalidate cached campaign results")
	}
}
